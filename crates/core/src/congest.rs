//! CONGEST-model algorithms for §7.3.
//!
//! * [`BtFlood`] — Observation 7.4: BalancedTree is solvable in `O(log n)`
//!   CONGEST rounds with `B = O(log n)`-bit messages, although its query
//!   volume is `Ω(n)` (Proposition 4.9): nodes exchange labels and 2-hop
//!   identifiers in `O(1)` rounds to detect incompatibilities locally, then
//!   flood defect bits towards the roots for `O(log n)` rounds.
//! * [`BitTransfer`] + [`GadgetQuery`] — Example 7.6: the two-tree gadget
//!   requires `Ω(n/B)` CONGEST rounds (the whole bit vector crosses one
//!   edge) yet only `O(log n)` queries in the volume model.

use crate::output::BtOutput;
use std::collections::HashMap;
use std::collections::VecDeque;
use vc_graph::{NodeLabel, Port};
use vc_model::congest::{BitSize, CongestNode, LocalInfo};
use vc_model::oracle::{follow, NodeView, Oracle, QueryError};
use vc_model::run::QueryAlgorithm;

/// Number of phase rounds reserved for port-by-port exchanges (an upper
/// bound on the degree in all of our constructions).
const MAX_PORTS: u8 = 8;

/// Messages of the [`BtFlood`] machine.
#[derive(Clone, Debug, PartialEq)]
pub enum BtMsg {
    /// Round 0: identifier and full input label.
    Hello {
        /// Sender's unique identifier.
        id: u64,
        /// Sender's input label.
        label: NodeLabel,
    },
    /// Rounds 1..Δ: the identifier of the sender's neighbor behind `port`.
    NbrId {
        /// The sender's port.
        port: u8,
        /// The identifier behind it (`None` when the port is out of range).
        id: Option<u64>,
    },
    /// Whether the sender is internal (Definition 3.3, first half).
    StatusInternal(bool),
    /// The sender's full status: 0 = internal, 1 = leaf, 2 = inconsistent.
    StatusFull(u8),
    /// Defect bit flooded towards the roots.
    Defect(bool),
}

impl BitSize for BtMsg {
    fn bits(&self) -> usize {
        match self {
            // id + 5 optional ports (9 bits each) + color flag + tag.
            BtMsg::Hello { .. } => 64 + 5 * 9 + 2 + 3,
            BtMsg::NbrId { .. } => 8 + 1 + 64 + 3,
            BtMsg::StatusInternal(_) => 1 + 3,
            BtMsg::StatusFull(_) => 2 + 3,
            BtMsg::Defect(_) => 1 + 3,
        }
    }
}

/// The Observation 7.4 CONGEST algorithm for BalancedTree.
///
/// Schedule (Δ = [`MAX_PORTS`], `T = ⌈log₂ n⌉ + 4`):
///
/// * round 0 — broadcast `Hello`;
/// * rounds `1..=Δ` — broadcast the neighbor identifier behind port `r`;
/// * round Δ+1 — broadcast own internality;
/// * round Δ+2 — broadcast own full status;
/// * rounds Δ+3 .. Δ+3+T — compute compatibility (all conditions of
///   Definition 4.2 are functions of the gathered 2-hop information) and
///   flood defect bits to the parent;
/// * round Δ+3+T — decide the output exactly as the checker demands.
#[derive(Debug)]
pub struct BtFlood {
    hello: HashMap<u8, (u64, NodeLabel)>,
    nbr_ids: HashMap<(u8, u8), u64>,
    nbr_internal: HashMap<u8, bool>,
    nbr_status: HashMap<u8, u8>,
    defect_from: HashMap<u8, bool>,
    my_internal: Option<bool>,
    my_status: Option<u8>,
    my_compat: Option<bool>,
    decided: Option<BtOutput>,
}

impl BtFlood {
    fn rounds_for(n: usize) -> usize {
        let log_n = usize::BITS - n.max(2).leading_zeros();
        usize::from(MAX_PORTS) + 4 + log_n as usize + 4
    }

    fn port_in_range(info: &LocalInfo, p: Option<Port>) -> Option<u8> {
        p.filter(|p| p.index() < info.degree).map(Port::number)
    }

    /// 2-hop identifier: the id of `via`-neighbor's neighbor behind the
    /// neighbor's own `port`.
    fn two_hop(&self, via: u8, port: Option<Port>) -> Option<u64> {
        let p = port?;
        self.nbr_ids.get(&(via, p.number())).copied()
    }

    fn compute_internal(&self, info: &LocalInfo) -> bool {
        let l = info.label;
        let (Some(lc), Some(rc)) = (
            Self::port_in_range(info, l.left_child),
            Self::port_in_range(info, l.right_child),
        ) else {
            return false;
        };
        if lc == rc {
            return false;
        }
        if l.parent == l.left_child || l.parent == l.right_child {
            return false;
        }
        // Children must point back: child's neighbor behind its parent port
        // must be me.
        for child_port in [lc, rc] {
            let Some((_, child_label)) = self.hello.get(&child_port) else {
                return false;
            };
            let back = child_label
                .parent
                .and_then(|pp| self.nbr_ids.get(&(child_port, pp.number())));
            if back != Some(&info.id) {
                return false;
            }
        }
        true
    }

    fn compute_status(&self, info: &LocalInfo) -> u8 {
        if self.my_internal == Some(true) {
            return 0;
        }
        match Self::port_in_range(info, info.label.parent) {
            Some(pp) if self.nbr_internal.get(&pp) == Some(&true) => 1,
            _ => 2,
        }
    }

    fn compute_compat(&self, info: &LocalInfo) -> bool {
        let l = info.label;
        let internal = self.my_status == Some(0);
        let ln = Self::port_in_range(info, l.left_nbr);
        let rn = Self::port_in_range(info, l.right_nbr);
        // type-preserving / leaves.
        for p in [ln, rn].into_iter().flatten() {
            let st = self.nbr_status.get(&p).copied().unwrap_or(2);
            if internal && st != 0 {
                return false;
            }
            if !internal && st != 1 {
                return false;
            }
        }
        // agreement.
        if let Some(p) = ln {
            let u_label = self.hello.get(&p).map(|(_, l)| *l).unwrap_or_default();
            if self.two_hop(p, u_label.right_nbr) != Some(info.id) {
                return false;
            }
        }
        if let Some(p) = rn {
            let u_label = self.hello.get(&p).map(|(_, l)| *l).unwrap_or_default();
            if self.two_hop(p, u_label.left_nbr) != Some(info.id) {
                return false;
            }
        }
        if internal {
            let lc = Self::port_in_range(info, l.left_child).expect("internal");
            let rc = Self::port_in_range(info, l.right_child).expect("internal");
            let lc_label = self.hello.get(&lc).map(|(_, l)| *l).unwrap_or_default();
            let rc_label = self.hello.get(&rc).map(|(_, l)| *l).unwrap_or_default();
            let lc_id = self.hello.get(&lc).map(|(i, _)| *i);
            let rc_id = self.hello.get(&rc).map(|(i, _)| *i);
            // siblings.
            if self.two_hop(lc, lc_label.right_nbr) != rc_id
                || self.two_hop(rc, rc_label.left_nbr) != lc_id
            {
                return false;
            }
            // persistence.
            if let Some(w) = rn {
                let w_label = self.hello.get(&w).map(|(_, l)| *l).unwrap_or_default();
                let a = self.two_hop(rc, rc_label.right_nbr);
                let b = self.two_hop(w, w_label.left_child);
                if a.is_none() || a != b {
                    return false;
                }
            }
            if let Some(u) = ln {
                let u_label = self.hello.get(&u).map(|(_, l)| *l).unwrap_or_default();
                let a = self.two_hop(lc, lc_label.left_nbr);
                let b = self.two_hop(u, u_label.right_child);
                if a.is_none() || a != b {
                    return false;
                }
            }
        }
        true
    }

    fn my_defect(&self) -> bool {
        self.my_status == Some(0) || self.my_status == Some(1)
    }

    fn defect_now(&self, info: &LocalInfo) -> bool {
        let own = self.my_defect() && self.my_compat == Some(false);
        let lc = Self::port_in_range(info, info.label.left_child);
        let rc = Self::port_in_range(info, info.label.right_child);
        let below = [lc, rc]
            .into_iter()
            .flatten()
            .any(|p| self.defect_from.get(&p) == Some(&true));
        own || below
    }

    fn broadcast(info: &LocalInfo, msg: BtMsg) -> Vec<(Port, BtMsg)> {
        (1..=info.degree as u8)
            .map(|p| (Port::new(p), msg.clone()))
            .collect()
    }
}

impl CongestNode for BtFlood {
    type Msg = BtMsg;
    type Output = BtOutput;

    fn init(_info: &LocalInfo) -> Self {
        BtFlood {
            hello: HashMap::new(),
            nbr_ids: HashMap::new(),
            nbr_internal: HashMap::new(),
            nbr_status: HashMap::new(),
            defect_from: HashMap::new(),
            my_internal: None,
            my_status: None,
            my_compat: None,
            decided: None,
        }
    }

    fn round(
        &mut self,
        info: &LocalInfo,
        round: usize,
        inbox: &[(Port, BtMsg)],
    ) -> Vec<(Port, BtMsg)> {
        // Absorb everything, tagged by arrival port.
        for (port, msg) in inbox {
            let p = port.number();
            match msg {
                BtMsg::Hello { id, label } => {
                    self.hello.insert(p, (*id, *label));
                }
                BtMsg::NbrId { port: q, id } => {
                    if let Some(id) = id {
                        self.nbr_ids.insert((p, *q), *id);
                    }
                }
                BtMsg::StatusInternal(b) => {
                    self.nbr_internal.insert(p, *b);
                }
                BtMsg::StatusFull(s) => {
                    self.nbr_status.insert(p, *s);
                }
                BtMsg::Defect(d) => {
                    let e = self.defect_from.entry(p).or_insert(false);
                    *e = *e || *d;
                }
            }
        }
        let delta = usize::from(MAX_PORTS);
        let total = Self::rounds_for(info.n);
        match round {
            0 => Self::broadcast(
                info,
                BtMsg::Hello {
                    id: info.id,
                    label: info.label,
                },
            ),
            r if r >= 1 && r <= delta => {
                let q = r as u8;
                let id = self.hello.get(&q).map(|(i, _)| *i);
                Self::broadcast(info, BtMsg::NbrId { port: q, id })
            }
            r if r == delta + 1 => {
                self.my_internal = Some(self.compute_internal(info));
                Self::broadcast(info, BtMsg::StatusInternal(self.my_internal.unwrap()))
            }
            r if r == delta + 2 => {
                self.my_status = Some(self.compute_status(info));
                Self::broadcast(info, BtMsg::StatusFull(self.my_status.unwrap()))
            }
            r if r > delta + 2 && r < total => {
                if self.my_compat.is_none() {
                    self.my_compat = Some(self.compute_compat(info));
                }
                match Self::port_in_range(info, info.label.parent) {
                    Some(pp) => vec![(Port::new(pp), BtMsg::Defect(self.defect_now(info)))],
                    None => Vec::new(),
                }
            }
            _ => {
                if self.decided.is_none() {
                    let out = match self.my_status {
                        Some(2) | None => BtOutput::balanced(None), // unconstrained
                        Some(_) if self.my_compat == Some(false) => BtOutput::unbalanced(None),
                        Some(1) => BtOutput::balanced(info.label.parent),
                        _ => {
                            // Compatible internal: point at a defective
                            // child, or report balanced.
                            let lc = Self::port_in_range(info, info.label.left_child);
                            let rc = Self::port_in_range(info, info.label.right_child);
                            let defective = [lc, rc]
                                .into_iter()
                                .flatten()
                                .find(|p| self.defect_from.get(p) == Some(&true));
                            match defective {
                                Some(p) => BtOutput::unbalanced(Some(Port::new(p))),
                                None => BtOutput::balanced(info.label.parent),
                            }
                        }
                    };
                    self.decided = Some(out);
                }
                Vec::new()
            }
        }
    }

    fn output(&self, _info: &LocalInfo) -> Option<BtOutput> {
        self.decided
    }
}

/// Messages of the [`BitTransfer`] machine: packed `(index << 1) | bit`
/// entries, each 33 bits.
#[derive(Clone, Debug, Default)]
pub struct Packets(pub Vec<u64>);

impl BitSize for Packets {
    fn bits(&self) -> usize {
        2 + 33 * self.0.len()
    }
}

/// The Example 7.6 CONGEST algorithm: the input-side leaves send their
/// `(index, bit)` pairs up; everything funnels through the single bridge
/// edge (hence `Ω(n/B)` rounds) and floods down the output side.
#[derive(Debug)]
pub struct BitTransfer {
    /// Entries waiting to be forwarded.
    queue: VecDeque<u64>,
    /// Deduplication of forwarded entries.
    seen: std::collections::HashSet<u64>,
    /// The decided bit (output-side leaves only).
    my_bit: Option<bool>,
    started: bool,
}

impl BitTransfer {
    /// Per-edge-per-round entry budget for bandwidth `b` bits.
    fn cap(bandwidth_bits: usize) -> usize {
        ((bandwidth_bits.saturating_sub(2)) / 33).max(1)
    }

    fn is_root(info: &LocalInfo) -> bool {
        // Roots reach the other side through a port that is not port 1
        // (inner nodes' parent port is always 1 in the gadget).
        info.label.parent.map(Port::number) != Some(1)
    }

    fn is_leaf(info: &LocalInfo) -> bool {
        info.label.left_child.is_none()
    }
}

/// The bandwidth the simulation runs at, communicated through `aux`-free
/// means: the machine infers its cap from the `BANDWIDTH` it is
/// parameterized with at the type level is overkill — instead the runner
/// passes bandwidth in [`vc_model::congest::run_congest`] and we mirror the
/// value here.
pub struct BitTransferWithBandwidth<const B: usize>(BitTransfer);

impl<const B: usize> std::fmt::Debug for BitTransferWithBandwidth<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitTransferWithBandwidth<{B}>")
    }
}

impl<const B: usize> CongestNode for BitTransferWithBandwidth<B> {
    type Msg = Packets;
    type Output = Option<bool>;

    fn init(_info: &LocalInfo) -> Self {
        Self(BitTransfer {
            queue: VecDeque::new(),
            seen: std::collections::HashSet::new(),
            my_bit: None,
            started: false,
        })
    }

    fn round(
        &mut self,
        info: &LocalInfo,
        _round: usize,
        inbox: &[(Port, Packets)],
    ) -> Vec<(Port, Packets)> {
        let me = &mut self.0;
        let input_side = info.label.bit == Some(true);
        let leaf = BitTransfer::is_leaf(info);
        for (_, pkt) in inbox {
            for &e in &pkt.0 {
                if me.seen.insert(e) {
                    if !input_side && leaf {
                        if let Some(aux) = info.label.aux {
                            if e >> 1 == aux >> 1 {
                                me.my_bit = Some(e & 1 == 1);
                            }
                        }
                    }
                    me.queue.push_back(e);
                }
            }
        }
        if !me.started {
            me.started = true;
            if input_side && leaf {
                if let Some(aux) = info.label.aux {
                    me.queue.push_back(aux);
                }
            }
        }
        let cap = BitTransfer::cap(B);
        let batch: Vec<u64> = (0..cap).filter_map(|_| me.queue.pop_front()).collect();
        if batch.is_empty() {
            return Vec::new();
        }
        if input_side {
            // Funnel up: leaves/internals to parent; the root's parent port
            // is the bridge.
            match info.label.parent {
                Some(p) => vec![(p, Packets(batch))],
                None => Vec::new(),
            }
        } else {
            // Flood down both children.
            let mut out = Vec::new();
            for port in [info.label.left_child, info.label.right_child]
                .into_iter()
                .flatten()
            {
                out.push((port, Packets(batch.clone())));
            }
            out
        }
    }

    fn output(&self, info: &LocalInfo) -> Option<Option<bool>> {
        let input_side = info.label.bit == Some(true);
        if !input_side && BitTransfer::is_leaf(info) && !BitTransfer::is_root(info) {
            self.0.my_bit.map(Some)
        } else {
            Some(None)
        }
    }
}

/// The query-model counterpart for Example 7.6: an output-side leaf climbs
/// to its root, crosses the bridge, and descends by its index bits —
/// `O(log n)` volume against the CONGEST model's `Ω(n/B)` rounds.
#[derive(Clone, Copy, Debug, Default)]
pub struct GadgetQuery;

impl QueryAlgorithm for GadgetQuery {
    type Output = Option<bool>;

    fn name(&self) -> &'static str {
        "gadget/query"
    }

    fn fallback(&self) -> Option<bool> {
        None
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<Option<bool>, QueryError> {
        let root = oracle.root();
        // Only output-side leaves have work to do.
        if root.label.bit != Some(false) || root.label.left_child.is_some() {
            return Ok(None);
        }
        let Some(aux) = root.label.aux else {
            return Ok(None);
        };
        let index = aux >> 1;
        // Climb to the output-side root, counting depth.
        let mut depth = 0u32;
        let mut cur = root;
        let bridge = loop {
            let Some(p) = follow(oracle, &cur, cur.label.parent)? else {
                return Ok(None);
            };
            if p.label.bit == Some(true) {
                break p;
            }
            cur = p;
            depth += 1;
        };
        // Descend the input side by the index bits (most significant
        // first).
        let mut v = bridge;
        for j in (0..depth).rev() {
            let bit = (index >> j) & 1;
            let port = if bit == 0 {
                v.label.left_child
            } else {
                v.label.right_child
            };
            let Some(next) = follow(oracle, &v, port)? else {
                return Ok(None);
            };
            v = next;
        }
        Ok(v.label.aux.map(|a| a & 1 == 1))
    }
}

/// Convenience: the bits each output-side leaf should report, in leaf
/// order — the ground truth for both models.
pub fn expected_bits(view: &NodeView) -> Option<u64> {
    view.label.aux
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcl::check_solution;
    use crate::problems::balanced_tree::BalancedTree;
    use vc_graph::gen;
    use vc_model::congest::run_congest;
    use vc_model::run::{run_all, RunConfig};

    #[test]
    fn bt_flood_matches_checker_on_compatible_instance() {
        let (inst, _) = gen::balanced_tree_compatible(4);
        let report = run_congest::<BtFlood>(&inst, 160, 200).unwrap();
        assert!(check_solution(&BalancedTree, &inst, &report.outputs).is_ok());
        // O(log n) rounds.
        assert!(report.rounds <= BtFlood::rounds_for(inst.n()) + 1);
        assert!(report.max_message_bits <= 160);
    }

    #[test]
    fn bt_flood_flags_defects() {
        let (inst, meta) = gen::disjointness_embedding(&[true, false], &[true, false]);
        let report = run_congest::<BtFlood>(&inst, 160, 200).unwrap();
        let check = check_solution(&BalancedTree, &inst, &report.outputs);
        assert!(check.is_ok(), "{check:?}");
        assert_eq!(
            report.outputs[meta.root].flag,
            crate::output::BtFlag::Unbalanced
        );
    }

    #[test]
    fn bt_flood_on_unbalanced_tree() {
        let (inst, meta) = gen::unbalanced_tree(3);
        let report = run_congest::<BtFlood>(&inst, 160, 200).unwrap();
        let check = check_solution(&BalancedTree, &inst, &report.outputs);
        assert!(check.is_ok(), "{check:?}");
        assert_eq!(
            report.outputs[meta.root].flag,
            crate::output::BtFlag::Unbalanced
        );
    }

    #[test]
    fn bit_transfer_delivers_all_bits() {
        let bits = vec![true, false, false, true, true, false, true, false];
        let (inst, meta) = gen::two_tree_gadget(3, &bits);
        let report = run_congest::<BitTransferWithBandwidth<35>>(&inst, 35, 500).unwrap();
        for (i, &u) in meta.u_leaves.iter().enumerate() {
            assert_eq!(report.outputs[u], Some(bits[i]), "leaf {i}");
        }
    }

    #[test]
    fn bit_transfer_rounds_scale_with_bandwidth() {
        let bits: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let (inst, _) = gen::two_tree_gadget(5, &bits);
        let narrow = run_congest::<BitTransferWithBandwidth<35>>(&inst, 35, 2000).unwrap();
        let wide = run_congest::<BitTransferWithBandwidth<350>>(&inst, 350, 2000).unwrap();
        assert!(
            narrow.rounds > wide.rounds + 10,
            "narrow {} vs wide {}",
            narrow.rounds,
            wide.rounds
        );
    }

    #[test]
    fn gadget_query_solves_with_logarithmic_volume() {
        let bits: Vec<bool> = (0..16).map(|i| i % 2 == 1).collect();
        let (inst, meta) = gen::two_tree_gadget(4, &bits);
        let report = run_all(&inst, &GadgetQuery, &RunConfig::default()).unwrap();
        let outputs = report.complete_outputs().unwrap();
        for (i, &u) in meta.u_leaves.iter().enumerate() {
            assert_eq!(outputs[u], Some(bits[i]), "leaf {i}");
        }
        // Volume O(log n): climb + descend.
        assert!(report.summary().max_volume <= 2 * 4 + 3);
    }

    #[test]
    fn message_sizes_are_accounted() {
        assert!(
            BtMsg::Hello {
                id: 0,
                label: NodeLabel::empty()
            }
            .bits()
                <= 160
        );
        assert_eq!(Packets(vec![1, 2]).bits(), 2 + 66);
    }
}
