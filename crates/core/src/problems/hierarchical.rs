//! Hierarchical 2½-coloring, `Hierarchical-THC(k)` (paper §5): distance
//! `Θ(n^{1/k})`, randomized volume `Θ̃(n^{1/k})`, deterministic volume
//! `Θ̃(n)`.
//!
//! The input is a colored tree labeling whose `RC`-chains induce *levels*
//! (Definition 5.1): level-1 components are `LC`-paths/cycles, and each
//! node at level `ℓ > 1` hangs a level-`(ℓ−1)` component off its `RC`. The
//! output palette is `{R, B, D, X}` — color, *decline*, *exempt* — with the
//! validity conditions of Definition 5.5.

use crate::lcl::{Lcl, Violation};
use crate::output::ThcColor;
use crate::problems::util::Explorer;
use std::collections::HashMap;
use vc_graph::{structure, Color, Instance};
use vc_model::oracle::{NodeView, Oracle, QueryError};
use vc_model::run::QueryAlgorithm;

/// The Hierarchical-THC(k) LCL (Definition 5.5).
#[derive(Clone, Copy, Debug)]
pub struct HierarchicalThc {
    /// The hierarchy parameter `k ≥ 1`.
    pub k: u32,
}

impl HierarchicalThc {
    /// Creates the problem for a fixed `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1);
        Self { k }
    }
}

/// `LC(v)` resolved with its parent back-pointer (the `G_k` edge condition
/// of Definition 5.1): the node `u` with `u = LC(v)` and `P(u) = v`.
pub(crate) fn lc_strict(inst: &Instance, v: usize) -> Option<usize> {
    let u = inst.left_child_node(v)?;
    (inst.parent_node(u) == Some(v)).then_some(u)
}

/// `RC(v)` resolved with its parent back-pointer.
pub(crate) fn rc_strict(inst: &Instance, v: usize) -> Option<usize> {
    let u = inst.right_child_node(v)?;
    (inst.parent_node(u) == Some(v)).then_some(u)
}

fn chi_in(inst: &Instance, v: usize) -> Color {
    inst.labels[v].color.unwrap_or(Color::R)
}

/// Checks the per-node conditions of Definition 5.5 at a node whose level is
/// `lvl`. Outputs are supplied through a getter so that HH-THC (and the
/// lower-bound adversaries, which only know the outputs of simulated nodes)
/// can map partial or mixed output alphabets onto symbols (`None` marks an
/// unknown/non-symbol output, which fails whichever rule references it).
pub fn check_thc_node(
    inst: &Instance,
    get_out: &dyn Fn(usize) -> Option<ThcColor>,
    v: usize,
    lvl: u32,
    k: u32,
) -> Result<(), Violation> {
    let Some(out) = get_out(v) else {
        return Err(Violation {
            node: v,
            rule: "5.5:needs-symbol",
        });
    };
    // Condition 1: levels above k are exempt.
    if lvl > k {
        return if out == ThcColor::X {
            Ok(())
        } else {
            Err(Violation {
                node: v,
                rule: "5.5:1:exempt-above-k",
            })
        };
    }
    let lc = lc_strict(inst, v);
    let rc = rc_strict(inst, v);
    let is_leaf = lc.is_none();
    let input = ThcColor::from_color(chi_in(inst, v));
    // Condition 2: leaves keep their color, decline, or are exempt.
    if is_leaf && !(out == input || out == ThcColor::D || out == ThcColor::X) {
        return Err(Violation {
            node: v,
            rule: "5.5:2:leaf-palette",
        });
    }
    if lvl == 1 {
        // Condition 3(a).
        if !matches!(out, ThcColor::R | ThcColor::B | ThcColor::D) {
            return Err(Violation {
                node: v,
                rule: "5.5:3a:level1-palette",
            });
        }
        // Condition 3(b).
        if let Some(lc) = lc {
            if get_out(lc) != Some(out) {
                return Err(Violation {
                    node: v,
                    rule: "5.5:3b:level1-unanimous",
                });
            }
        }
        if k > 1 {
            return Ok(());
        }
        // For k = 1, level 1 is also the top level: condition 5 applies as
        // well (so declining is forbidden); fall through.
    }
    if lvl > 1 && lvl < k {
        // Condition 4 (only constrains non-leaves).
        let Some(lc) = lc else {
            return Ok(());
        };
        let a = get_out(lc) == Some(out) && matches!(out, ThcColor::R | ThcColor::B | ThcColor::D);
        let b = out == ThcColor::X
            && rc
                .and_then(&get_out)
                .map(ThcColor::is_solved)
                .unwrap_or(false);
        let c = (out == input || out == ThcColor::D) && get_out(lc) == Some(ThcColor::X);
        return if a || b || c {
            Ok(())
        } else {
            Err(Violation {
                node: v,
                rule: "5.5:4:mid-level",
            })
        };
    }
    // Condition 5: lvl == k.
    if !matches!(out, ThcColor::R | ThcColor::B | ThcColor::X) {
        return Err(Violation {
            node: v,
            rule: "5.5:5:top-palette",
        });
    }
    if out == ThcColor::X {
        // Condition 5(a).
        let ok = rc
            .and_then(&get_out)
            .map(ThcColor::is_solved)
            .unwrap_or(false);
        return if ok {
            Ok(())
        } else {
            Err(Violation {
                node: v,
                rule: "5.5:5a:exempt-needs-solved-rc",
            })
        };
    }
    if let Some(lc) = lc {
        // Condition 5(b).
        let lc_out = get_out(lc);
        let ok = match lc_out {
            Some(ThcColor::X) => out == input,
            Some(c) => out == c,
            None => false,
        };
        if !ok {
            return Err(Violation {
                node: v,
                rule: "5.5:5b:top-segment",
            });
        }
    }
    Ok(())
}

impl Lcl for HierarchicalThc {
    type Output = ThcColor;

    fn name(&self) -> String {
        format!("Hierarchical-THC({})", self.k)
    }

    fn check_radius(&self) -> u32 {
        // Levels are read off RC-chains of length ≤ k, plus one hop for the
        // child conditions.
        self.k + 1
    }

    fn check_node(&self, inst: &Instance, outputs: &[ThcColor], v: usize) -> Result<(), Violation> {
        let lvl = structure::level_capped(inst, v, self.k);
        check_thc_node(inst, &|u| Some(outputs[u]), v, lvl, self.k)
    }
}

/// Whether recursion is gated by a way-point lottery (the randomized
/// volume-efficient variant of Proposition 5.14) or always allowed (the
/// deterministic `RecursiveHTHC`, Algorithm 2).
#[derive(Clone, Copy, Debug)]
enum Gate {
    Always,
    WayPoints {
        /// Lottery success probability `p = c·log₂(n) / n^{1/k}`.
        p: f64,
    },
}

/// The solver engine shared by the deterministic and randomized variants.
struct Engine<'x, 'o> {
    xp: &'x mut Explorer<'o>,
    k: u32,
    threshold: usize,
    gate: Gate,
    memo: HashMap<usize, ThcColor>,
}

impl Engine<'_, '_> {
    /// Level of `v` per Definition 5.1, capped at `k + 1`.
    fn level(&mut self, v: &NodeView) -> Result<u32, QueryError> {
        let mut cur = *v;
        let mut lvl = 1u32;
        while lvl <= self.k {
            match self.xp.follow(&cur, cur.label.right_child)? {
                Some(u) => {
                    cur = u;
                    lvl += 1;
                }
                None => return Ok(lvl),
            }
        }
        Ok(self.k + 1)
    }

    /// Backbone successor (`u = LC(v)` with `P(u) = v`).
    fn next(&mut self, v: &NodeView) -> Result<Option<NodeView>, QueryError> {
        let Some(u) = self.xp.follow(v, v.label.left_child)? else {
            return Ok(None);
        };
        let back = self.xp.follow(&u, u.label.parent)?;
        Ok((back.map(|b| b.node) == Some(v.node)).then_some(u))
    }

    /// Backbone predecessor (`p = P(v)` with `LC(p) = v`); `None` at a
    /// level-`ℓ` root (Definition 5.2).
    fn prev(&mut self, v: &NodeView) -> Result<Option<NodeView>, QueryError> {
        let Some(p) = self.xp.follow(v, v.label.parent)? else {
            return Ok(None);
        };
        let down = self.xp.follow(&p, p.label.left_child)?;
        Ok((down.map(|d| d.node) == Some(v.node)).then_some(p))
    }

    /// The `RC` child with back-pointer, i.e. the level-`(ℓ−1)` root below.
    fn down(&mut self, v: &NodeView) -> Result<Option<NodeView>, QueryError> {
        let Some(u) = self.xp.follow(v, v.label.right_child)? else {
            return Ok(None);
        };
        let back = self.xp.follow(&u, u.label.parent)?;
        Ok((back.map(|b| b.node) == Some(v.node)).then_some(u))
    }

    /// Whether `v` may become exempt: its recursion gate is open and the
    /// component below solves to a non-`D` value (Algorithm 2 lines 7, 12,
    /// 15, 23 with the way-point modification of Proposition 5.14).
    fn exempt_candidate(&mut self, v: &NodeView) -> Result<bool, QueryError> {
        match self.gate {
            Gate::Always => {}
            Gate::WayPoints { p } => {
                if !self.xp.bernoulli(v.node, p)? {
                    return Ok(false);
                }
            }
        }
        let Some(r) = self.down(v)? else {
            return Ok(false);
        };
        Ok(self.solve(r)?.is_solved())
    }

    /// `RecursiveHTHC(v)` (Algorithm 2), memoized per execution.
    fn solve(&mut self, v: NodeView) -> Result<ThcColor, QueryError> {
        if let Some(&c) = self.memo.get(&v.node) {
            return Ok(c);
        }
        let c = self.solve_uncached(v)?;
        self.memo.insert(v.node, c);
        Ok(c)
    }

    fn solve_uncached(&mut self, v: NodeView) -> Result<ThcColor, QueryError> {
        let lvl = self.level(&v)?;
        if lvl > self.k {
            return Ok(ThcColor::X);
        }
        // Lines 1–4: probe the component; shallow components are colored by
        // their level leaf (path) or minimum-ID node (cycle).
        if let Some(anchor) = self.shallow_anchor(&v)? {
            return Ok(ThcColor::from_color(anchor.label.color.unwrap_or(Color::R)));
        }
        // Lines 5–6: deep level-1 components decline.
        if lvl == 1 {
            return Ok(ThcColor::D);
        }
        // Line 7: exemption if the component below solves.
        if self.exempt_candidate(&v)? {
            return Ok(ThcColor::X);
        }
        // Lines 10–18: scan for the nearest exempt-capable descendant `u`
        // and ancestor `w` along the backbone.
        let t = self.threshold;
        let mut u = v;
        let mut u_prev: Option<NodeView> = None;
        let mut du = 0usize;
        let mut u_stop = false;
        let mut w = v;
        let mut dw = 0usize;
        let mut w_stop = false;
        for _ in 0..=t {
            if !u_stop {
                if self.exempt_candidate(&u)? {
                    u_stop = true;
                } else if let Some(nx) = self.next(&u)? {
                    u_prev = Some(u);
                    u = nx;
                    du += 1;
                } else {
                    u_stop = true; // level-ℓ leaf
                }
            }
            if !w_stop {
                if self.exempt_candidate(&w)? {
                    w_stop = true;
                } else if let Some(pv) = self.prev(&w)? {
                    w = pv;
                    dw += 1;
                } else {
                    w_stop = true; // level-ℓ root
                }
            }
            if u_stop && w_stop {
                break;
            }
        }
        // Lines 22–30.
        if !(u_stop && w_stop) || du + dw > t {
            return Ok(ThcColor::D);
        }
        if self.exempt_candidate(&u)? {
            // `u` outputs X; the segment above it is unanimously colored by
            // the input color of u's backbone parent (condition 5(b)'s
            // "χ_in(P(u))").
            let anchor = u_prev.unwrap_or(u);
            Ok(ThcColor::from_color(anchor.label.color.unwrap_or(Color::R)))
        } else {
            // `u` is a level-ℓ leaf whose subtree declined: the segment is
            // colored by the leaf's own input color.
            Ok(ThcColor::from_color(u.label.color.unwrap_or(Color::R)))
        }
    }

    /// Probes whether `v`'s component `C` has at most `threshold` nodes
    /// (Definition 5.10 "shallow"); returns the coloring anchor — the level
    /// leaf of a path, or the minimum-ID node of a cycle.
    fn shallow_anchor(&mut self, v: &NodeView) -> Result<Option<NodeView>, QueryError> {
        let t = self.threshold;
        // Forward walk (towards the level leaf / around the cycle).
        let mut fwd = Vec::new();
        let mut cur = *v;
        while let Some(nx) = self.next(&cur)? {
            if nx.node == v.node {
                // A cycle of length fwd.len() + 1.
                let mut all = fwd;
                all.push(*v);
                if all.len() <= t {
                    let anchor = all
                        .into_iter()
                        .min_by_key(|x| x.id)
                        .expect("cycle is nonempty");
                    return Ok(Some(anchor));
                }
                return Ok(None);
            }
            fwd.push(nx);
            if fwd.len() > t {
                return Ok(None);
            }
            cur = nx;
        }
        let leaf = *fwd.last().unwrap_or(v);
        // Backward walk to the component root.
        let mut count = fwd.len() + 1;
        let mut back = *v;
        while let Some(pv) = self.prev(&back)? {
            count += 1;
            if count > t {
                return Ok(None);
            }
            back = pv;
        }
        Ok(Some(leaf))
    }
}

/// The deterministic `RecursiveHTHC` solver (Algorithm 2, Proposition 5.12):
/// distance `O(k·n^{1/k})`, volume `Θ̃(n)`.
#[derive(Clone, Copy, Debug)]
pub struct DeterministicSolver {
    /// The hierarchy parameter `k`.
    pub k: u32,
}

/// The randomized way-point solver (Proposition 5.14): volume
/// `O(n^{1/k} · log^{O(k)} n)` with high probability.
#[derive(Clone, Copy, Debug)]
pub struct RandomizedSolver {
    /// The hierarchy parameter `k`.
    pub k: u32,
    /// The way-point density constant `c` in `p = c·log₂(n)/n^{1/k}`
    /// (the paper's analysis works for `c ≥ 3`).
    pub c: f64,
}

impl RandomizedSolver {
    /// Way-point solver with the default density constant.
    pub fn new(k: u32) -> Self {
        Self { k, c: 4.0 }
    }
}

/// Shared threshold `2·⌈n^{1/k}⌉` (Definition 5.10 / Algorithm 2).
pub(crate) fn component_threshold(n: usize, k: u32) -> usize {
    (2.0 * (n.max(2) as f64).powf(1.0 / f64::from(k)).ceil()) as usize
}

fn run_engine(oracle: &mut dyn Oracle, k: u32, gate: Gate) -> Result<ThcColor, QueryError> {
    let mut xp = Explorer::new(oracle);
    let threshold = component_threshold(xp.n(), k);
    let root = xp.root();
    let mut engine = Engine {
        xp: &mut xp,
        k,
        threshold,
        gate,
        memo: HashMap::new(),
    };
    engine.solve(root)
}

impl QueryAlgorithm for DeterministicSolver {
    type Output = ThcColor;

    fn name(&self) -> &'static str {
        "hierarchical-thc/deterministic"
    }

    fn fold_identity(&self, h: &mut vc_ident::IdHasher) {
        h.text(self.name());
        h.word(u64::from(self.k));
    }

    fn fallback(&self) -> ThcColor {
        ThcColor::D
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<ThcColor, QueryError> {
        run_engine(oracle, self.k, Gate::Always)
    }
}

impl QueryAlgorithm for RandomizedSolver {
    type Output = ThcColor;

    fn name(&self) -> &'static str {
        "hierarchical-thc/way-points"
    }

    fn fold_identity(&self, h: &mut vc_ident::IdHasher) {
        h.text(self.name());
        h.word(u64::from(self.k));
        h.word(self.c.to_bits());
    }

    fn fallback(&self) -> ThcColor {
        ThcColor::D
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<ThcColor, QueryError> {
        let n = oracle.n().max(2) as f64;
        let p = (self.c * n.log2() / n.powf(1.0 / f64::from(self.k))).min(1.0);
        run_engine(oracle, self.k, Gate::WayPoints { p })
    }
}

/// The way-point probability used by [`RandomizedSolver`] — exposed for the
/// ablation experiment (Lemmas 5.16 and 5.18 need `c ≥ 3`).
pub fn waypoint_probability(n: usize, k: u32, c: f64) -> f64 {
    let n = n.max(2) as f64;
    (c * n.log2() / n.powf(1.0 / f64::from(k))).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcl::check_solution;
    use vc_graph::gen;
    use vc_model::run::{run_all, RunConfig};
    use vc_model::RandomTape;

    fn rand_config(seed: u64) -> RunConfig {
        RunConfig {
            tape: Some(RandomTape::private(seed)),
            ..RunConfig::default()
        }
    }

    #[test]
    fn deterministic_solver_valid_on_balanced_instances() {
        for k in 1..=3u32 {
            for seed in 0..3 {
                let inst = gen::hierarchical(gen::HierarchicalParams {
                    k,
                    backbone_len: 4,
                    seed,
                });
                let problem = HierarchicalThc::new(k);
                let report =
                    run_all(&inst, &DeterministicSolver { k }, &RunConfig::default()).unwrap();
                let outputs = report.complete_outputs().unwrap();
                assert!(
                    check_solution(&problem, &inst, &outputs).is_ok(),
                    "k={k} seed={seed}: {:?}",
                    check_solution(&problem, &inst, &outputs)
                );
            }
        }
    }

    #[test]
    fn deterministic_solver_valid_on_cycle_instances() {
        let inst = gen::hierarchical_with_cycle(gen::HierarchicalParams {
            k: 2,
            backbone_len: 5,
            seed: 3,
        });
        let problem = HierarchicalThc::new(2);
        let report = run_all(&inst, &DeterministicSolver { k: 2 }, &RunConfig::default()).unwrap();
        let outputs = report.complete_outputs().unwrap();
        assert!(check_solution(&problem, &inst, &outputs).is_ok());
    }

    #[test]
    fn shallow_components_color_unanimously() {
        let inst = gen::hierarchical(gen::HierarchicalParams {
            k: 2,
            backbone_len: 3,
            seed: 1,
        });
        // n = 12, threshold = 2·⌈√12⌉ = 8 ≥ 3: all components shallow, so
        // every node outputs a color — no D, no X.
        let report = run_all(&inst, &DeterministicSolver { k: 2 }, &RunConfig::default()).unwrap();
        let outputs = report.complete_outputs().unwrap();
        assert!(outputs.iter().all(|c| c.is_color()));
        assert!(check_solution(&HierarchicalThc::new(2), &inst, &outputs).is_ok());
    }

    #[test]
    fn deep_level1_path_declines() {
        // A single long level-1 path evaluated with k = 2: the path is deep
        // (300 > 2·⌈√300⌉ = 36), so every node declines.
        let inst = gen::hierarchical(gen::HierarchicalParams {
            k: 1,
            backbone_len: 300,
            seed: 2,
        });
        let problem = HierarchicalThc::new(2);
        let report = run_all(&inst, &DeterministicSolver { k: 2 }, &RunConfig::default()).unwrap();
        let outputs = report.complete_outputs().unwrap();
        assert!(outputs.iter().all(|&c| c == ThcColor::D));
        assert!(check_solution(&problem, &inst, &outputs).is_ok());
    }

    #[test]
    fn deep_balanced_instance_uses_exemptions_and_validates() {
        // Large enough that backbones (≈ n^{1/2}) exceed the threshold ...
        // here backbone_len L with n = L + L², threshold = 2⌈√n⌉ ≈ 2L, so
        // balanced instances are always shallow for k=2. Deep behavior needs
        // skew: a long level-2 backbone with unit level-1 components.
        let inst = skewed_instance(200, 4);
        let problem = HierarchicalThc::new(2);
        let report = run_all(&inst, &DeterministicSolver { k: 2 }, &RunConfig::default()).unwrap();
        let outputs = report.complete_outputs().unwrap();
        let check = check_solution(&problem, &inst, &outputs);
        assert!(check.is_ok(), "{check:?}");
        // The top backbone is deep (200 > 2⌈√400⌉ = 40) and every level-1
        // component is trivially shallow → every level-2 node is exempt.
        let lvl = structure::levels_capped(&inst, 2);
        assert!((0..inst.n())
            .filter(|&v| lvl[v] == 2)
            .all(|v| outputs[v] == ThcColor::X));
    }

    /// A skewed k=2 instance: a level-2 backbone of length `len` whose RC
    /// components are single level-1 nodes.
    fn skewed_instance(len: usize, _seed: u64) -> Instance {
        // Build directly: backbone of `len`, each with one level-1 child.
        let mut b = vc_graph::GraphBuilder::new();
        let mut labels = Vec::new();
        let mut prev: Option<usize> = None;
        for i in 0..len {
            let v = b.add_node_with_id((2 * i + 1) as u64);
            labels.push(vc_graph::NodeLabel::empty().with_color(if i % 3 == 0 {
                Color::R
            } else {
                Color::B
            }));
            let c = b.add_node_with_id((2 * i + 2) as u64);
            labels.push(vc_graph::NodeLabel::empty().with_color(Color::B));
            let (pv, pc) = b.connect_auto(v, c).unwrap();
            labels[v].right_child = Some(pv);
            labels[c].parent = Some(pc);
            if let Some(p) = prev {
                let (pp, pv2) = b.connect_auto(p, v).unwrap();
                labels[p].left_child = Some(pp);
                labels[v].parent = Some(pv2);
            }
            prev = Some(v);
        }
        Instance::new(b.build().unwrap(), labels)
    }

    #[test]
    fn randomized_solver_valid_whp_on_balanced_instances() {
        for seed in 0..3 {
            let inst = gen::hierarchical_for_size(2, 900, seed);
            let problem = HierarchicalThc::new(2);
            let report = run_all(&inst, &RandomizedSolver::new(2), &rand_config(seed)).unwrap();
            let outputs = report.complete_outputs().unwrap();
            assert!(
                check_solution(&problem, &inst, &outputs).is_ok(),
                "seed {seed}: {:?}",
                check_solution(&problem, &inst, &outputs)
            );
        }
    }

    #[test]
    fn randomized_solver_valid_on_skewed_instances() {
        let inst = skewed_instance(300, 9);
        let problem = HierarchicalThc::new(2);
        let report = run_all(&inst, &RandomizedSolver::new(2), &rand_config(5)).unwrap();
        let outputs = report.complete_outputs().unwrap();
        let check = check_solution(&problem, &inst, &outputs);
        assert!(check.is_ok(), "{check:?}");
    }

    #[test]
    fn randomized_volume_not_worse_than_deterministic() {
        let inst = gen::hierarchical_for_size(2, 3000, 11);
        let starts = vc_model::StartSelection::Sample { count: 40, seed: 1 };
        let det = run_all(
            &inst,
            &DeterministicSolver { k: 2 },
            &RunConfig {
                starts,
                exact_distance: false,
                ..RunConfig::default()
            },
        )
        .unwrap();
        let rnd = run_all(
            &inst,
            &RandomizedSolver::new(2),
            &RunConfig {
                tape: Some(RandomTape::private(11)),
                starts,
                exact_distance: false,
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert!(rnd.summary().max_volume <= det.summary().max_volume);
    }

    #[test]
    fn checker_rejects_bad_outputs() {
        let inst = gen::hierarchical(gen::HierarchicalParams {
            k: 2,
            backbone_len: 3,
            seed: 1,
        });
        let problem = HierarchicalThc::new(2);
        let outputs = vec![ThcColor::D; inst.n()];
        let err = check_solution(&problem, &inst, &outputs).unwrap_err();
        assert_eq!(err.rule, "5.5:5:top-palette");
        let outputs = vec![ThcColor::X; inst.n()];
        let err = check_solution(&problem, &inst, &outputs).unwrap_err();
        assert_eq!(err.rule, "5.5:3a:level1-palette");
    }

    #[test]
    fn checker_enforces_level1_unanimity() {
        let inst = gen::hierarchical(gen::HierarchicalParams {
            k: 1,
            backbone_len: 4,
            seed: 9,
        });
        let problem = HierarchicalThc::new(1);
        let report = run_all(&inst, &DeterministicSolver { k: 1 }, &RunConfig::default()).unwrap();
        let mut outputs = report.complete_outputs().unwrap();
        assert!(check_solution(&problem, &inst, &outputs).is_ok());
        let lvl = structure::levels_capped(&inst, 1);
        let v = (0..inst.n())
            .find(|&v| lvl[v] == 1 && lc_strict(&inst, v).is_some())
            .unwrap();
        outputs[v] = match outputs[v] {
            ThcColor::R => ThcColor::B,
            _ => ThcColor::R,
        };
        assert!(check_solution(&problem, &inst, &outputs).is_err());
    }

    #[test]
    fn threshold_formula() {
        assert_eq!(component_threshold(100, 2), 20);
        assert_eq!(component_threshold(100, 1), 200);
        assert!(component_threshold(1000, 3) >= 20);
        assert!(waypoint_probability(16, 2, 4.0) >= 1.0);
        assert!(waypoint_probability(1_000_000, 2, 4.0) < 0.1);
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        let _ = HierarchicalThc::new(0);
    }
}
