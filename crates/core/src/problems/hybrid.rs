//! Hybrid balanced 2½-coloring, `Hybrid-THC(k)` (paper §6): distance
//! `Θ(log n)`, randomized volume `Θ̃(n^{1/k})`, deterministic volume
//! `Θ̃(n)`.
//!
//! Levels are *explicit inputs* (`level(v) ∈ [k+1]`, Definition 6.1). Each
//! level-1 component is a BalancedTree instance (§4), which may be solved
//! (all nodes output pairs) or unanimously declined (`D`). Levels `≥ 2`
//! follow the Hierarchical-THC validity conditions, except that a level-2
//! node may only become exempt when the BalancedTree below it is *solved*:
//! condition 4(b) becomes "`χ_out(v) = X` and `χ_out(RC(v)) ∈ {B, U}`".
//!
//! ## A note on the top level
//!
//! Definition 6.1 prescribes "conditions 2 and 4 (with the new 4(b))" at
//! `ℓ = 2` and "valid in the sense of Definition 5.5" for `ℓ > 2`. Applied
//! literally with `k = 2` this leaves *no* level subject to condition 5, and
//! the problem would be solvable by declining everywhere — contradicting the
//! `Θ(log n)` distance and `Θ̃(n^{1/k})` volume bounds of Theorem 6.3. As in
//! Hierarchical-THC, the top level `ℓ = k` must anchor the hierarchy: we
//! apply condition 5 (palette `{R, B, X}`, no declining) at `ℓ = k`, with
//! the exemption license of 5(a) replaced at `k = 2` by the hybrid license
//! `χ_out(RC(v)) ∈ {B, U}`. For `k > 2` this is exactly the literal
//! definition; for `k = 2` it is the minimal reading that keeps Theorem 6.3
//! true.

use crate::lcl::{Lcl, Violation};
use crate::output::{HybridOutput, ThcColor};
use crate::problems::balanced_tree::{check_bt_node_in, solve_bt};
use crate::problems::hierarchical::{component_threshold, lc_strict, rc_strict};
use crate::problems::util::Explorer;
use std::collections::{HashMap, HashSet, VecDeque};
use vc_graph::{Color, Instance, Port};
use vc_model::oracle::{NodeView, Oracle, QueryError};
use vc_model::run::QueryAlgorithm;

/// The Hybrid-THC(k) LCL (Definition 6.1).
#[derive(Clone, Copy, Debug)]
pub struct HybridThc {
    /// The hierarchy parameter `k ≥ 2`.
    pub k: u32,
}

impl HybridThc {
    /// Creates the problem for a fixed `k ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: u32) -> Self {
        assert!(k >= 2, "Hybrid-THC needs k ≥ 2");
        Self { k }
    }
}

/// The explicit input level of `v`; `None` for unlabeled nodes (which are
/// treated as exempt, like levels above `k`).
pub(crate) fn input_level(inst: &Instance, v: usize) -> Option<u32> {
    inst.labels[v].level.map(u32::from)
}

fn sym(outputs: &[HybridOutput], v: usize) -> Option<ThcColor> {
    outputs[v].sym()
}

/// Checks the per-node condition of Hybrid-THC(k) (see the module docs for
/// the exact reading). Shared with HH-THC.
pub(crate) fn check_hybrid_node(
    inst: &Instance,
    outputs: &[HybridOutput],
    v: usize,
    k: u32,
) -> Result<(), Violation> {
    let Some(lvl) = input_level(inst, v) else {
        // Unlabeled nodes are exempt.
        return if outputs[v] == HybridOutput::Sym(ThcColor::X) {
            Ok(())
        } else {
            Err(Violation {
                node: v,
                rule: "6.1:unlabeled-exempt",
            })
        };
    };
    if lvl == 1 {
        return check_level1(inst, outputs, v);
    }
    let Some(out) = sym(outputs, v) else {
        return Err(Violation {
            node: v,
            rule: "6.1:upper-levels-output-symbols",
        });
    };
    if lvl > k {
        // Definition 5.5 condition 1.
        return if out == ThcColor::X {
            Ok(())
        } else {
            Err(Violation {
                node: v,
                rule: "5.5:1:exempt-above-k",
            })
        };
    }
    let lc = lc_strict(inst, v);
    let rc = rc_strict(inst, v);
    let is_leaf = lc.is_none();
    let input = ThcColor::from_color(inst.labels[v].color.unwrap_or(Color::R));
    // The exemption license: BalancedTree solved below (ℓ = 2) or a solved
    // symbol below (ℓ > 2).
    let license = match rc {
        None => false,
        Some(r) => {
            if lvl == 2 {
                outputs[r].is_solved_pair()
            } else {
                sym(outputs, r).map(ThcColor::is_solved).unwrap_or(false)
            }
        }
    };
    // Condition 2 (leaves at any level ≤ k).
    if is_leaf && !(out == input || out == ThcColor::D || out == ThcColor::X) {
        return Err(Violation {
            node: v,
            rule: "5.5:2:leaf-palette",
        });
    }
    if lvl == k {
        // Condition 5 (top anchor; see module docs for k = 2).
        if !matches!(out, ThcColor::R | ThcColor::B | ThcColor::X) {
            return Err(Violation {
                node: v,
                rule: "5.5:5:top-palette",
            });
        }
        if out == ThcColor::X {
            return if license {
                Ok(())
            } else {
                Err(Violation {
                    node: v,
                    rule: "5.5:5a:exempt-needs-solved-rc",
                })
            };
        }
        if let Some(lc) = lc {
            let ok = match sym(outputs, lc) {
                Some(ThcColor::X) => out == input,
                Some(c) => out == c,
                None => false,
            };
            if !ok {
                return Err(Violation {
                    node: v,
                    rule: "5.5:5b:top-segment",
                });
            }
        }
        return Ok(());
    }
    // 2 ≤ lvl < k: condition 4 with the modified 4(b).
    let Some(lc) = lc else {
        return Ok(()); // leaves already constrained by condition 2
    };
    let lc_sym = sym(outputs, lc);
    let a = matches!(out, ThcColor::R | ThcColor::B | ThcColor::D) && lc_sym == Some(out);
    let b = out == ThcColor::X && license;
    let c = (out == input || out == ThcColor::D) && lc_sym == Some(ThcColor::X);
    if a || b || c {
        Ok(())
    } else {
        Err(Violation {
            node: v,
            rule: "6.1:4:mid-level",
        })
    }
}

/// Level-1 validity: a BalancedTree-valid pair labeling on the level-1
/// subgraph, or unanimous declining.
fn check_level1(inst: &Instance, outputs: &[HybridOutput], v: usize) -> Result<(), Violation> {
    let keep = |u: usize| input_level(inst, u) == Some(1);
    match outputs[v] {
        HybridOutput::Sym(ThcColor::D) => {
            // Alternative (b): decline, unanimously with the level-1 G_T
            // neighbors.
            let mut nbrs = Vec::new();
            if let Some(u) = lc_strict(inst, v) {
                nbrs.push(u);
            }
            if let Some(u) = rc_strict(inst, v) {
                nbrs.push(u);
            }
            if let Some(p) = inst.parent_node(v) {
                if lc_strict(inst, p) == Some(v) || rc_strict(inst, p) == Some(v) {
                    nbrs.push(p);
                }
            }
            for u in nbrs {
                if keep(u) && outputs[u] != HybridOutput::Sym(ThcColor::D) {
                    return Err(Violation {
                        node: v,
                        rule: "6.1:decline-unanimous",
                    });
                }
            }
            Ok(())
        }
        HybridOutput::Sym(_) => Err(Violation {
            node: v,
            rule: "6.1:level1-palette",
        }),
        HybridOutput::Pair(_) => {
            let get_out = |u: usize| match outputs[u] {
                HybridOutput::Pair(p) => Some(p),
                HybridOutput::Sym(_) => None,
            };
            check_bt_node_in(inst, &get_out, v, &keep)
        }
    }
}

impl Lcl for HybridThc {
    type Output = HybridOutput;

    fn name(&self) -> String {
        format!("Hybrid-THC({})", self.k)
    }

    fn check_radius(&self) -> u32 {
        3
    }

    fn check_node(
        &self,
        inst: &Instance,
        outputs: &[HybridOutput],
        v: usize,
    ) -> Result<(), Violation> {
        check_hybrid_node(inst, outputs, v, self.k)
    }
}

/// The deterministic `O(log n)`-distance solver (Theorem 6.3): level-1
/// nodes run the BalancedTree distance solver (Proposition 4.8); everything
/// above is exempt, licensed by the solved instances below.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistanceSolver;

impl QueryAlgorithm for DistanceSolver {
    type Output = HybridOutput;

    fn name(&self) -> &'static str {
        "hybrid-thc/distance"
    }

    fn fallback(&self) -> HybridOutput {
        HybridOutput::Sym(ThcColor::X)
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<HybridOutput, QueryError> {
        let mut xp = Explorer::new(oracle);
        let root = xp.root();
        match root.label.level {
            Some(1) => Ok(HybridOutput::Pair(solve_bt(&mut xp, root)?)),
            _ => Ok(HybridOutput::Sym(ThcColor::X)),
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Gate {
    Always,
    WayPoints { p: f64 },
}

struct Engine<'x, 'o> {
    xp: &'x mut Explorer<'o>,
    k: u32,
    /// Backbone window threshold `2·⌈n^{1/k}⌉`.
    threshold: usize,
    /// Size cap above which a level-1 BalancedTree component declines.
    bt_cap: usize,
    gate: Gate,
    memo: HashMap<usize, HybridOutput>,
}

impl Engine<'_, '_> {
    fn next(&mut self, v: &NodeView) -> Result<Option<NodeView>, QueryError> {
        let Some(u) = self.xp.follow(v, v.label.left_child)? else {
            return Ok(None);
        };
        let back = self.xp.follow(&u, u.label.parent)?;
        Ok((back.map(|b| b.node) == Some(v.node)).then_some(u))
    }

    fn prev(&mut self, v: &NodeView) -> Result<Option<NodeView>, QueryError> {
        let Some(p) = self.xp.follow(v, v.label.parent)? else {
            return Ok(None);
        };
        let down = self.xp.follow(&p, p.label.left_child)?;
        Ok((down.map(|d| d.node) == Some(v.node)).then_some(p))
    }

    fn down(&mut self, v: &NodeView) -> Result<Option<NodeView>, QueryError> {
        let Some(u) = self.xp.follow(v, v.label.right_child)? else {
            return Ok(None);
        };
        let back = self.xp.follow(&u, u.label.parent)?;
        Ok((back.map(|b| b.node) == Some(v.node)).then_some(u))
    }

    /// The hybrid exemption license (Definition 6.1): at level 2 the
    /// component below must be a *solved* BalancedTree; above, a solved
    /// symbol.
    fn exempt_candidate(&mut self, v: &NodeView, lvl: u32) -> Result<bool, QueryError> {
        match self.gate {
            Gate::Always => {}
            Gate::WayPoints { p } => {
                if !self.xp.bernoulli(v.node, p)? {
                    return Ok(false);
                }
            }
        }
        let Some(r) = self.down(v)? else {
            return Ok(false);
        };
        let below = self.solve(r)?;
        Ok(if lvl == 2 {
            below.is_solved_pair()
        } else {
            below.sym().map(ThcColor::is_solved).unwrap_or(false)
        })
    }

    fn solve(&mut self, v: NodeView) -> Result<HybridOutput, QueryError> {
        if let Some(&c) = self.memo.get(&v.node) {
            return Ok(c);
        }
        let c = self.solve_uncached(v)?;
        self.memo.insert(v.node, c);
        Ok(c)
    }

    fn solve_uncached(&mut self, v: NodeView) -> Result<HybridOutput, QueryError> {
        let Some(lvl) = v.label.level.map(u32::from) else {
            return Ok(HybridOutput::Sym(ThcColor::X));
        };
        if lvl > self.k {
            return Ok(HybridOutput::Sym(ThcColor::X));
        }
        if lvl == 1 {
            return self.solve_level1(v);
        }
        // Backbone machinery, as in RecursiveHTHC.
        if let Some(anchor) = self.shallow_anchor(&v)? {
            return Ok(HybridOutput::Sym(ThcColor::from_color(
                anchor.label.color.unwrap_or(Color::R),
            )));
        }
        if self.exempt_candidate(&v, lvl)? {
            return Ok(HybridOutput::Sym(ThcColor::X));
        }
        let t = self.threshold;
        let mut u = v;
        let mut u_prev: Option<NodeView> = None;
        let mut du = 0usize;
        let mut u_stop = false;
        let mut w = v;
        let mut dw = 0usize;
        let mut w_stop = false;
        for _ in 0..=t {
            if !u_stop {
                if self.exempt_candidate(&u, lvl)? {
                    u_stop = true;
                } else if let Some(nx) = self.next(&u)? {
                    u_prev = Some(u);
                    u = nx;
                    du += 1;
                } else {
                    u_stop = true;
                }
            }
            if !w_stop {
                if self.exempt_candidate(&w, lvl)? {
                    w_stop = true;
                } else if let Some(pv) = self.prev(&w)? {
                    w = pv;
                    dw += 1;
                } else {
                    w_stop = true;
                }
            }
            if u_stop && w_stop {
                break;
            }
        }
        if !(u_stop && w_stop) || du + dw > t {
            return Ok(HybridOutput::Sym(ThcColor::D));
        }
        if self.exempt_candidate(&u, lvl)? {
            let anchor = u_prev.unwrap_or(u);
            Ok(HybridOutput::Sym(ThcColor::from_color(
                anchor.label.color.unwrap_or(Color::R),
            )))
        } else {
            Ok(HybridOutput::Sym(ThcColor::from_color(
                u.label.color.unwrap_or(Color::R),
            )))
        }
    }

    /// Level-1: measure the component; small ones are solved as
    /// BalancedTree instances, large ones decline unanimously.
    fn solve_level1(&mut self, v: NodeView) -> Result<HybridOutput, QueryError> {
        if self.component_at_most(&v, self.bt_cap)? {
            Ok(HybridOutput::Pair(solve_bt(self.xp, v)?))
        } else {
            Ok(HybridOutput::Sym(ThcColor::D))
        }
    }

    /// BFS over the level-1 component of `v` (through all ports, restricted
    /// to level-1 nodes), counting up to `cap + 1` nodes.
    fn component_at_most(&mut self, v: &NodeView, cap: usize) -> Result<bool, QueryError> {
        let mut seen: HashSet<usize> = HashSet::from([v.node]);
        let mut queue = VecDeque::from([*v]);
        let mut count = 1usize;
        while let Some(u) = queue.pop_front() {
            for p in 1..=u.degree as u8 {
                let w = self.xp.follow(&u, Some(Port::new(p)))?.expect("valid port");
                if w.label.level == Some(1) && seen.insert(w.node) {
                    count += 1;
                    if count > cap {
                        return Ok(false);
                    }
                    queue.push_back(w);
                }
            }
        }
        Ok(true)
    }

    /// Backbone shallow probe, as in Hierarchical-THC.
    fn shallow_anchor(&mut self, v: &NodeView) -> Result<Option<NodeView>, QueryError> {
        let t = self.threshold;
        let mut fwd = Vec::new();
        let mut cur = *v;
        while let Some(nx) = self.next(&cur)? {
            if nx.node == v.node {
                let mut all = fwd;
                all.push(*v);
                if all.len() <= t {
                    let anchor = all
                        .into_iter()
                        .min_by_key(|x| x.id)
                        .expect("cycle is nonempty");
                    return Ok(Some(anchor));
                }
                return Ok(None);
            }
            fwd.push(nx);
            if fwd.len() > t {
                return Ok(None);
            }
            cur = nx;
        }
        let leaf = *fwd.last().unwrap_or(v);
        let mut count = fwd.len() + 1;
        let mut back = *v;
        while let Some(pv) = self.prev(&back)? {
            count += 1;
            if count > t {
                return Ok(None);
            }
            back = pv;
        }
        Ok(Some(leaf))
    }
}

fn run_engine(oracle: &mut dyn Oracle, k: u32, gate: Gate) -> Result<HybridOutput, QueryError> {
    let mut xp = Explorer::new(oracle);
    let n = xp.n();
    let threshold = component_threshold(n, k);
    let root = xp.root();
    let mut engine = Engine {
        xp: &mut xp,
        k,
        threshold,
        bt_cap: 2 * threshold + 8,
        gate,
        memo: HashMap::new(),
    };
    engine.solve(root)
}

/// The randomized way-point solver: volume `Θ̃(n^{1/k})` on the balanced
/// instance family (Theorem 6.3), using the same way-point technique as
/// Hierarchical-THC with the BalancedTree base case.
#[derive(Clone, Copy, Debug)]
pub struct RandomizedSolver {
    /// The hierarchy parameter `k ≥ 2`.
    pub k: u32,
    /// Way-point density constant.
    pub c: f64,
}

impl RandomizedSolver {
    /// Way-point solver with the default density constant.
    pub fn new(k: u32) -> Self {
        Self { k, c: 4.0 }
    }
}

impl QueryAlgorithm for RandomizedSolver {
    type Output = HybridOutput;

    fn name(&self) -> &'static str {
        "hybrid-thc/way-points"
    }

    fn fold_identity(&self, h: &mut vc_ident::IdHasher) {
        h.text(self.name());
        h.word(u64::from(self.k));
        h.word(self.c.to_bits());
    }

    fn fallback(&self) -> HybridOutput {
        HybridOutput::Sym(ThcColor::D)
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<HybridOutput, QueryError> {
        let n = oracle.n().max(2) as f64;
        let p = (self.c * n.log2() / n.powf(1.0 / f64::from(self.k))).min(1.0);
        run_engine(oracle, self.k, Gate::WayPoints { p })
    }
}

/// The ungated engine: a deterministic solver whose volume is `Θ̃(n)` —
/// the upper-bound counterpart of the `D-VOL` row of Table 1.
#[derive(Clone, Copy, Debug)]
pub struct DeterministicVolumeSolver {
    /// The hierarchy parameter `k ≥ 2`.
    pub k: u32,
}

impl QueryAlgorithm for DeterministicVolumeSolver {
    type Output = HybridOutput;

    fn name(&self) -> &'static str {
        "hybrid-thc/deterministic"
    }

    fn fold_identity(&self, h: &mut vc_ident::IdHasher) {
        h.text(self.name());
        h.word(u64::from(self.k));
    }

    fn fallback(&self) -> HybridOutput {
        HybridOutput::Sym(ThcColor::D)
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<HybridOutput, QueryError> {
        run_engine(oracle, self.k, Gate::Always)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcl::check_solution;
    use crate::output::BtFlag;
    use vc_graph::gen;
    use vc_model::run::{run_all, RunConfig};
    use vc_model::RandomTape;

    fn rand_config(seed: u64) -> RunConfig {
        RunConfig {
            tape: Some(RandomTape::private(seed)),
            ..RunConfig::default()
        }
    }

    fn small_instance(seed: u64) -> Instance {
        gen::hybrid(gen::HybridParams {
            k: 2,
            backbone_len: 4,
            bt_depth: 2,
            seed,
        })
    }

    #[test]
    fn distance_solver_valid_on_hybrid_instances() {
        for seed in 0..4 {
            let inst = small_instance(seed);
            let problem = HybridThc::new(2);
            let report = run_all(&inst, &DistanceSolver, &RunConfig::default()).unwrap();
            let outputs = report.complete_outputs().unwrap();
            let check = check_solution(&problem, &inst, &outputs);
            assert!(check.is_ok(), "seed {seed}: {check:?}");
            // Level-1 nodes all solved their BTs; levels ≥ 2 are exempt.
            for (v, out) in outputs.iter().enumerate() {
                match inst.labels[v].level {
                    Some(1) => assert!(matches!(out, HybridOutput::Pair(_))),
                    _ => assert_eq!(*out, HybridOutput::Sym(ThcColor::X)),
                }
            }
        }
    }

    #[test]
    fn distance_solver_distance_is_logarithmic() {
        let inst = gen::hybrid_for_size(2, 2000, 3);
        let report = run_all(&inst, &DistanceSolver, &RunConfig::default()).unwrap();
        let s = report.summary();
        // BT depth ≈ log(n^(1/2)) plus O(1) checks.
        let bound = (inst.n() as f64).log2() as u32 + 4;
        assert!(s.max_distance <= bound, "{} > {bound}", s.max_distance);
        let problem = HybridThc::new(2);
        assert!(check_solution(&problem, &inst, &report.complete_outputs().unwrap()).is_ok());
    }

    #[test]
    fn randomized_solver_valid_on_hybrid_instances() {
        for k in 2..=3u32 {
            for seed in 0..3 {
                let inst = gen::hybrid_for_size(k, 800, seed);
                let problem = HybridThc::new(k);
                let report = run_all(&inst, &RandomizedSolver::new(k), &rand_config(seed)).unwrap();
                let outputs = report.complete_outputs().unwrap();
                let check = check_solution(&problem, &inst, &outputs);
                assert!(check.is_ok(), "k={k} seed={seed}: {check:?}");
            }
        }
    }

    #[test]
    fn deterministic_volume_solver_valid() {
        let inst = gen::hybrid_for_size(2, 500, 7);
        let problem = HybridThc::new(2);
        let report = run_all(
            &inst,
            &DeterministicVolumeSolver { k: 2 },
            &RunConfig::default(),
        )
        .unwrap();
        let outputs = report.complete_outputs().unwrap();
        let check = check_solution(&problem, &inst, &outputs);
        assert!(check.is_ok(), "{check:?}");
    }

    #[test]
    fn randomized_volume_is_sublinear() {
        let inst = gen::hybrid_for_size(2, 4000, 9);
        let report = run_all(
            &inst,
            &RandomizedSolver::new(2),
            &RunConfig {
                tape: Some(RandomTape::private(9)),
                starts: vc_model::StartSelection::Sample { count: 60, seed: 2 },
                exact_distance: false,
                ..RunConfig::default()
            },
        )
        .unwrap();
        let s = report.summary();
        assert!(
            s.max_volume < inst.n() / 3,
            "volume {} should be ≪ n = {}",
            s.max_volume,
            inst.n()
        );
    }

    #[test]
    fn checker_rejects_decline_at_top_level() {
        let inst = small_instance(1);
        let problem = HybridThc::new(2);
        let outputs: Vec<HybridOutput> = (0..inst.n())
            .map(|_| HybridOutput::Sym(ThcColor::D))
            .collect();
        let err = check_solution(&problem, &inst, &outputs).unwrap_err();
        assert_eq!(err.rule, "5.5:5:top-palette");
    }

    #[test]
    fn checker_rejects_exemption_over_declined_bt() {
        let inst = small_instance(2);
        let problem = HybridThc::new(2);
        // Level 1 declines (valid per se), level 2 claims X: the license
        // fails because the BT below was not solved.
        let outputs: Vec<HybridOutput> = (0..inst.n())
            .map(|v| match inst.labels[v].level {
                Some(1) => HybridOutput::Sym(ThcColor::D),
                _ => HybridOutput::Sym(ThcColor::X),
            })
            .collect();
        let err = check_solution(&problem, &inst, &outputs).unwrap_err();
        assert_eq!(err.rule, "5.5:5a:exempt-needs-solved-rc");
    }

    #[test]
    fn checker_rejects_mixed_level1_component() {
        let inst = small_instance(3);
        let problem = HybridThc::new(2);
        let report = run_all(&inst, &DistanceSolver, &RunConfig::default()).unwrap();
        let mut outputs = report.complete_outputs().unwrap();
        // Flip a single level-1 internal node to D inside a solved BT.
        let v = (0..inst.n())
            .find(|&v| {
                inst.labels[v].level == Some(1)
                    && crate::problems::balanced_tree::is_internal_in(&inst, v, &|u| {
                        inst.labels[u].level == Some(1)
                    })
            })
            .unwrap();
        outputs[v] = HybridOutput::Sym(ThcColor::D);
        assert!(check_solution(&problem, &inst, &outputs).is_err());
    }

    #[test]
    fn declining_one_component_with_consistent_parent_is_valid() {
        let inst = small_instance(4);
        let problem = HybridThc::new(2);
        let report = run_all(&inst, &DistanceSolver, &RunConfig::default()).unwrap();
        let mut outputs = report.complete_outputs().unwrap();
        // Decline the BT below the last backbone node (a level-2 leaf) and
        // let that leaf keep its input color (condition 2); all other
        // level-2 nodes stay exempt via their solved BTs.
        let lvl2_leaf = (0..inst.n())
            .find(|&v| inst.labels[v].level == Some(2) && lc_strict(&inst, v).is_none())
            .unwrap();
        let bt_root = rc_strict(&inst, lvl2_leaf).unwrap();
        let keep = |u: usize| inst.labels[u].level == Some(1);
        let mut stack = vec![bt_root];
        let mut comp = std::collections::HashSet::new();
        comp.insert(bt_root);
        while let Some(u) = stack.pop() {
            for w in inst.graph.neighbors(u) {
                if keep(w) && comp.insert(w) {
                    stack.push(w);
                }
            }
        }
        for &u in &comp {
            outputs[u] = HybridOutput::Sym(ThcColor::D);
        }
        outputs[lvl2_leaf] =
            HybridOutput::Sym(ThcColor::from_color(inst.labels[lvl2_leaf].color.unwrap()));
        let check = check_solution(&problem, &inst, &outputs);
        assert!(check.is_ok(), "{check:?}");
    }

    #[test]
    fn outputs_are_pairs_exactly_at_level1_for_solved_instances() {
        let inst = gen::hybrid_for_size(3, 600, 5);
        let report = run_all(&inst, &RandomizedSolver::new(3), &rand_config(6)).unwrap();
        let outputs = report.complete_outputs().unwrap();
        for (v, out) in outputs.iter().enumerate() {
            if inst.labels[v].level != Some(1) {
                assert!(out.sym().is_some());
            }
        }
        // At least some BTs got solved with flag B.
        assert!(outputs.iter().any(|o| matches!(
            o,
            HybridOutput::Pair(p) if p.flag == BtFlag::Balanced
        )));
    }

    #[test]
    #[should_panic(expected = "k ≥ 2")]
    fn k1_rejected() {
        let _ = HybridThc::new(1);
    }
}
