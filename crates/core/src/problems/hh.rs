//! Hierarchical-or-hybrid 2½-coloring, `HH-THC(k, ℓ)` (paper §6.1):
//! distance `Θ(n^{1/ℓ})`, randomized volume `Θ̃(n^{1/k})`, deterministic
//! volume `Θ̃(n)`, for any `k ≤ ℓ`.
//!
//! Every node carries a selection bit `b_v` (Definition 6.4): nodes with
//! `b_v = 0` form an instance of Hierarchical-THC(ℓ), nodes with `b_v = 1`
//! an instance of Hybrid-THC(k). Membership is locally checkable, so the
//! combined problem is an LCL, and each solver simply dispatches on the bit
//! (the observation behind Theorem 6.5).

use crate::lcl::{Lcl, Violation};
use crate::output::{HybridOutput, ThcColor};
use crate::problems::hierarchical::{
    check_thc_node, DeterministicSolver as HierDet, RandomizedSolver as HierRand,
};
use crate::problems::hybrid::{
    check_hybrid_node, DeterministicVolumeSolver as HybDetVol, DistanceSolver as HybDist,
    RandomizedSolver as HybRand,
};
use vc_graph::{structure, Instance};
use vc_model::oracle::{Oracle, QueryError};
use vc_model::run::QueryAlgorithm;

/// The HH-THC(k, ℓ) LCL (Definition 6.4).
#[derive(Clone, Copy, Debug)]
pub struct HhThc {
    /// The Hybrid-THC parameter (`b_v = 1` side).
    pub k: u32,
    /// The Hierarchical-THC parameter (`b_v = 0` side).
    pub l: u32,
}

impl HhThc {
    /// Creates the problem for fixed `k ≤ ℓ`, `k ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ k ≤ ℓ`.
    pub fn new(k: u32, l: u32) -> Self {
        assert!(k >= 2 && k <= l, "HH-THC needs 2 ≤ k ≤ ℓ");
        Self { k, l }
    }
}

impl Lcl for HhThc {
    type Output = HybridOutput;

    fn name(&self) -> String {
        format!("HH-THC({}, {})", self.k, self.l)
    }

    fn check_radius(&self) -> u32 {
        self.l + 1
    }

    fn check_node(
        &self,
        inst: &Instance,
        outputs: &[HybridOutput],
        v: usize,
    ) -> Result<(), Violation> {
        match inst.labels[v].bit {
            Some(false) => {
                // G_0: Hierarchical-THC(ℓ), with levels from RC-chains
                // ("with the input level ignored", Definition 6.4).
                let lvl = structure::level_capped(inst, v, self.l);
                check_thc_node(inst, &|u| outputs[u].sym(), v, lvl, self.l)
            }
            Some(true) => check_hybrid_node(inst, outputs, v, self.k),
            None => Err(Violation {
                node: v,
                rule: "6.4:missing-selection-bit",
            }),
        }
    }
}

/// The distance-optimal solver: `O(n^{1/ℓ})` on the hierarchical side,
/// `O(log n)` on the hybrid side (Theorem 6.5).
#[derive(Clone, Copy, Debug)]
pub struct DistanceSolver {
    /// Hybrid parameter.
    pub k: u32,
    /// Hierarchical parameter.
    pub l: u32,
}

impl QueryAlgorithm for DistanceSolver {
    type Output = HybridOutput;

    fn name(&self) -> &'static str {
        "hh-thc/distance"
    }

    fn fold_identity(&self, h: &mut vc_ident::IdHasher) {
        h.text(self.name());
        h.word(u64::from(self.k));
        h.word(u64::from(self.l));
    }

    fn fallback(&self) -> HybridOutput {
        HybridOutput::Sym(ThcColor::D)
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<HybridOutput, QueryError> {
        match oracle.root().label.bit {
            Some(false) => HierDet { k: self.l }.run(oracle).map(HybridOutput::Sym),
            _ => HybDist.run(oracle),
        }
    }
}

/// The randomized volume solver: `Θ̃(n^{1/ℓ})` on the hierarchical side,
/// `Θ̃(n^{1/k})` on the hybrid side — `Θ̃(n^{1/k})` overall since `k ≤ ℓ`.
#[derive(Clone, Copy, Debug)]
pub struct RandomizedSolver {
    /// Hybrid parameter.
    pub k: u32,
    /// Hierarchical parameter.
    pub l: u32,
}

impl QueryAlgorithm for RandomizedSolver {
    type Output = HybridOutput;

    fn name(&self) -> &'static str {
        "hh-thc/way-points"
    }

    fn fold_identity(&self, h: &mut vc_ident::IdHasher) {
        h.text(self.name());
        h.word(u64::from(self.k));
        h.word(u64::from(self.l));
    }

    fn fallback(&self) -> HybridOutput {
        HybridOutput::Sym(ThcColor::D)
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<HybridOutput, QueryError> {
        match oracle.root().label.bit {
            Some(false) => HierRand::new(self.l).run(oracle).map(HybridOutput::Sym),
            _ => HybRand::new(self.k).run(oracle),
        }
    }
}

/// The ungated deterministic solver — the `Θ̃(n)` volume upper bound.
#[derive(Clone, Copy, Debug)]
pub struct DeterministicVolumeSolver {
    /// Hybrid parameter.
    pub k: u32,
    /// Hierarchical parameter.
    pub l: u32,
}

impl QueryAlgorithm for DeterministicVolumeSolver {
    type Output = HybridOutput;

    fn name(&self) -> &'static str {
        "hh-thc/deterministic"
    }

    fn fold_identity(&self, h: &mut vc_ident::IdHasher) {
        h.text(self.name());
        h.word(u64::from(self.k));
        h.word(u64::from(self.l));
    }

    fn fallback(&self) -> HybridOutput {
        HybridOutput::Sym(ThcColor::D)
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<HybridOutput, QueryError> {
        match oracle.root().label.bit {
            Some(false) => HierDet { k: self.l }.run(oracle).map(HybridOutput::Sym),
            _ => HybDetVol { k: self.k }.run(oracle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcl::check_solution;
    use vc_graph::gen;
    use vc_model::run::{run_all, RunConfig};
    use vc_model::RandomTape;

    #[test]
    fn distance_solver_valid_on_hh_instances() {
        for seed in 0..3 {
            let inst = gen::hh(2, 2, 500, seed);
            let problem = HhThc::new(2, 2);
            let report =
                run_all(&inst, &DistanceSolver { k: 2, l: 2 }, &RunConfig::default()).unwrap();
            let outputs = report.complete_outputs().unwrap();
            let check = check_solution(&problem, &inst, &outputs);
            assert!(check.is_ok(), "seed {seed}: {check:?}");
        }
    }

    #[test]
    fn randomized_solver_valid_on_hh_instances() {
        for (k, l) in [(2u32, 2u32), (2, 3)] {
            let inst = gen::hh(k, l, 700, 5);
            let problem = HhThc::new(k, l);
            let config = RunConfig {
                tape: Some(RandomTape::private(5)),
                ..RunConfig::default()
            };
            let report = run_all(&inst, &RandomizedSolver { k, l }, &config).unwrap();
            let outputs = report.complete_outputs().unwrap();
            let check = check_solution(&problem, &inst, &outputs);
            assert!(check.is_ok(), "k={k} l={l}: {check:?}");
        }
    }

    #[test]
    fn deterministic_volume_solver_valid() {
        let inst = gen::hh(2, 2, 400, 9);
        let problem = HhThc::new(2, 2);
        let report = run_all(
            &inst,
            &DeterministicVolumeSolver { k: 2, l: 2 },
            &RunConfig::default(),
        )
        .unwrap();
        let outputs = report.complete_outputs().unwrap();
        let check = check_solution(&problem, &inst, &outputs);
        assert!(check.is_ok(), "{check:?}");
    }

    #[test]
    fn missing_bit_is_flagged() {
        let mut inst = gen::hh(2, 2, 200, 1);
        inst.labels[0].bit = None;
        let problem = HhThc::new(2, 2);
        let outputs = vec![HybridOutput::Sym(ThcColor::X); inst.n()];
        let err = problem.check_node(&inst, &outputs, 0).unwrap_err();
        assert_eq!(err.rule, "6.4:missing-selection-bit");
    }

    #[test]
    fn hierarchical_side_requires_symbols() {
        let inst = gen::hh(2, 2, 200, 2);
        let problem = HhThc::new(2, 2);
        let v = (0..inst.n())
            .find(|&v| inst.labels[v].bit == Some(false))
            .unwrap();
        let mut outputs = vec![HybridOutput::Sym(ThcColor::X); inst.n()];
        outputs[v] = HybridOutput::Pair(crate::output::BtOutput::balanced(None));
        let err = problem.check_node(&inst, &outputs, v).unwrap_err();
        assert_eq!(err.rule, "5.5:needs-symbol");
    }

    #[test]
    #[should_panic(expected = "2 ≤ k ≤ ℓ")]
    fn parameter_order_enforced() {
        let _ = HhThc::new(3, 2);
    }
}
