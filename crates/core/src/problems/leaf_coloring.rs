//! LeafColoring (paper §3): logarithmic distance and randomized volume, but
//! linear deterministic volume.
//!
//! *Input*: a colored tree labeling (Definition 3.1). *Output*: a color per
//! node. *Validity* (Definition 3.4): leaves and inconsistent nodes keep
//! their input color; every internal node outputs the color of one of its
//! `G_T`-children.

use crate::lcl::{Lcl, Violation};
use crate::problems::util::Explorer;
use std::collections::HashSet;
use vc_graph::{structure, Color, Instance};
use vc_model::oracle::{Oracle, QueryError};
use vc_model::run::QueryAlgorithm;

/// The LeafColoring LCL (Definition 3.4).
#[derive(Clone, Copy, Debug, Default)]
pub struct LeafColoring;

impl Lcl for LeafColoring {
    type Output = Color;

    fn name(&self) -> String {
        "LeafColoring".into()
    }

    fn check_radius(&self) -> u32 {
        2
    }

    fn check_node(&self, inst: &Instance, outputs: &[Color], v: usize) -> Result<(), Violation> {
        match structure::status(inst, v) {
            structure::NodeStatus::Leaf | structure::NodeStatus::Inconsistent => {
                let Some(chi_in) = inst.labels[v].color else {
                    return Err(Violation {
                        node: v,
                        rule: "3.4:missing-input-color",
                    });
                };
                if outputs[v] != chi_in {
                    return Err(Violation {
                        node: v,
                        rule: "3.4:leaf-keeps-color",
                    });
                }
                Ok(())
            }
            structure::NodeStatus::Internal => {
                let (lc, rc) = structure::gt_children(inst, v).expect("internal");
                if outputs[v] == outputs[lc] || outputs[v] == outputs[rc] {
                    Ok(())
                } else {
                    Err(Violation {
                        node: v,
                        rule: "3.4:internal-matches-child",
                    })
                }
            }
        }
    }
}

/// The deterministic `O(log n)`-distance solver of Proposition 3.9.
///
/// An internal node BFS-explores its `G_T`-descendants level by level
/// (left-to-right within a level, so the scan order is lexicographic in the
/// LC/RC path), stops at the first leaf — the *left-most nearest* descendant
/// leaf — and copies its input color. Lemma 3.8 bounds the search depth by
/// `log n` on every input, so the distance cost is `O(log n)` while the
/// volume may be `Θ(n)` (the whole point of the construction).
#[derive(Clone, Copy, Debug, Default)]
pub struct DistanceSolver;

impl QueryAlgorithm for DistanceSolver {
    type Output = Color;

    fn name(&self) -> &'static str {
        "leaf-coloring/distance"
    }

    fn fallback(&self) -> Color {
        Color::R
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<Color, QueryError> {
        let mut xp = Explorer::new(oracle);
        let root = xp.root();
        if !xp.is_internal(&root)? {
            // Leaf or inconsistent: keep the input color.
            return Ok(root.label.color.unwrap_or(Color::R));
        }
        // BFS over G_T descendants; children of internal nodes are internal
        // or leaves, so the first non-internal node found in level order is
        // the left-most nearest descendant leaf. De-duplication is sound
        // because in-degree in G_T is at most one (Observation 3.7): apart
        // from walking around the unique cycle — which only revisits nodes
        // at strictly larger depth — each node is reached by a unique path.
        let mut frontier = vec![root];
        let mut seen: HashSet<usize> = HashSet::from([root.node]);
        // A leaf exists within depth log n on every input (Lemma 3.8); the
        // explicit cap keeps adversarial inputs from running forever.
        let cap = usize::BITS - (xp.n().max(2) - 1).leading_zeros() + 2;
        for _depth in 0..=cap {
            let mut next = Vec::new();
            for v in &frontier {
                match xp.gt_children(v)? {
                    None => {
                        // First non-internal in level order: the chosen leaf.
                        return Ok(v.label.color.unwrap_or(Color::R));
                    }
                    Some((lc, rc)) => {
                        for c in [lc, rc] {
                            if seen.insert(c.node) {
                                next.push(c);
                            }
                        }
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        // No leaf within the cap — malformed instance; produce the fallback.
        Ok(self.fallback())
    }
}

/// `RWtoLeaf` (Algorithm 1): the randomized `O(log n)`-volume solver of
/// Proposition 3.10.
///
/// An internal node performs a downward random walk in `G_T`, steering at
/// each node `w` by `r_w(0)` — the *node's own* first random bit, so every
/// walk passing through `w` takes the same turn and all walks through `w`
/// reach the same leaf. If the walk returns to its starting node (the
/// pseudo-tree cycle), the flipped bit `1 − r_{v_0}(0)` routes it off the
/// cycle. Each step crosses a "good" (subtree-halving) edge with probability
/// ≥ 1/2, so the walk reaches a leaf within `O(log n)` steps w.h.p.
/// (negative-binomial tail, Lemma 2.12).
#[derive(Clone, Copy, Debug)]
pub struct RwToLeaf {
    /// Step cap as a multiple of `log₂ n` (the paper's analysis uses 16;
    /// truncated walks output the fallback color, Remark 3.11).
    pub step_factor: u32,
}

impl Default for RwToLeaf {
    fn default() -> Self {
        Self { step_factor: 32 }
    }
}

impl QueryAlgorithm for RwToLeaf {
    type Output = Color;

    fn name(&self) -> &'static str {
        "leaf-coloring/rw-to-leaf"
    }

    fn fold_identity(&self, h: &mut vc_ident::IdHasher) {
        h.text(self.name());
        h.word(u64::from(self.step_factor));
    }

    fn fallback(&self) -> Color {
        Color::R
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<Color, QueryError> {
        let mut xp = Explorer::new(oracle);
        let v0 = xp.root();
        let log_n = (usize::BITS - (xp.n().max(2) - 1).leading_zeros()).max(1);
        let cap = self.step_factor * log_n;
        let mut cur = v0;
        let mut revisited = false;
        for _ in 0..cap {
            if !xp.is_internal(&cur)? {
                // Leaf or inconsistent: its input color is the answer.
                return Ok(cur.label.color.unwrap_or(Color::R));
            }
            let base = xp.first_bit(cur.node)?;
            let b = if cur.node == v0.node && revisited {
                !base
            } else {
                base
            };
            if cur.node == v0.node {
                revisited = true;
            }
            let (lc, rc) = xp.gt_children(&cur)?.expect("internal");
            cur = if b { rc } else { lc };
        }
        // Truncated (Remark 3.11): arbitrary output.
        Ok(self.fallback())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcl::{check_solution, count_violations};
    use vc_graph::gen;
    use vc_model::run::{run_all, RunConfig};
    use vc_model::{Budget, RandomTape, StartSelection};

    fn config_with_tape(seed: u64) -> RunConfig {
        RunConfig {
            tape: Some(RandomTape::private(seed)),
            ..RunConfig::default()
        }
    }

    #[test]
    fn checker_accepts_uniform_coloring_on_complete_tree() {
        let inst = gen::complete_binary_tree(3, Color::B, Color::B);
        let outputs = vec![Color::B; inst.n()];
        assert!(check_solution(&LeafColoring, &inst, &outputs).is_ok());
    }

    #[test]
    fn checker_rejects_wrong_leaf_color() {
        let inst = gen::complete_binary_tree(2, Color::R, Color::B);
        let mut outputs = vec![Color::B; inst.n()];
        outputs[3] = Color::R; // a leaf flips away from its input color
        let err = check_solution(&LeafColoring, &inst, &outputs).unwrap_err();
        assert_eq!(err.rule, "3.4:leaf-keeps-color");
        assert_eq!(err.node, 3);
    }

    #[test]
    fn checker_rejects_internal_matching_no_child() {
        let inst = gen::complete_binary_tree(2, Color::R, Color::B);
        let mut outputs = vec![Color::B; inst.n()];
        outputs[0] = Color::R; // root's children both output B
        let err = check_solution(&LeafColoring, &inst, &outputs).unwrap_err();
        assert_eq!(err.rule, "3.4:internal-matches-child");
    }

    #[test]
    fn checker_requires_input_colors() {
        let mut inst = gen::complete_binary_tree(1, Color::R, Color::B);
        inst.labels[1].color = None;
        let outputs = vec![Color::B; inst.n()];
        let err = check_solution(&LeafColoring, &inst, &outputs).unwrap_err();
        assert_eq!(err.rule, "3.4:missing-input-color");
    }

    #[test]
    fn distance_solver_on_complete_tree() {
        // Hidden-leaf-color instance of Proposition 3.12: unique solution is
        // the leaf color everywhere.
        let inst = gen::complete_binary_tree(5, Color::R, Color::B);
        let report = run_all(&inst, &DistanceSolver, &RunConfig::default()).unwrap();
        let outputs = report.complete_outputs().unwrap();
        assert!(outputs.iter().all(|&c| c == Color::B));
        assert!(check_solution(&LeafColoring, &inst, &outputs).is_ok());
        // Distance is the tree depth from the root; volume is Θ(n) there.
        let root_rec = &report.records[0];
        assert_eq!(root_rec.distance, Some(5));
        assert!(root_rec.volume > inst.n() / 2);
    }

    #[test]
    fn distance_solver_on_random_trees() {
        for seed in 0..5 {
            let inst = gen::random_full_binary_tree(150, seed);
            let report = run_all(&inst, &DistanceSolver, &RunConfig::default()).unwrap();
            let outputs = report.complete_outputs().unwrap();
            assert!(
                check_solution(&LeafColoring, &inst, &outputs).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn distance_solver_on_pseudo_trees_with_cycles() {
        for seed in 0..5 {
            let inst = gen::pseudo_tree(120, 7, seed);
            let report = run_all(&inst, &DistanceSolver, &RunConfig::default()).unwrap();
            let outputs = report.complete_outputs().unwrap();
            assert!(
                check_solution(&LeafColoring, &inst, &outputs).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rw_to_leaf_valid_on_random_trees() {
        for seed in 0..5 {
            let inst = gen::random_full_binary_tree(150, seed);
            let report = run_all(&inst, &RwToLeaf::default(), &config_with_tape(seed)).unwrap();
            let outputs = report.complete_outputs().unwrap();
            assert!(
                check_solution(&LeafColoring, &inst, &outputs).is_ok(),
                "seed {seed}"
            );
            assert_eq!(report.truncated(), 0);
        }
    }

    #[test]
    fn rw_to_leaf_valid_on_cycles() {
        for seed in 0..5 {
            let inst = gen::pseudo_tree(150, 9, seed);
            let report =
                run_all(&inst, &RwToLeaf::default(), &config_with_tape(100 + seed)).unwrap();
            let outputs = report.complete_outputs().unwrap();
            assert!(
                check_solution(&LeafColoring, &inst, &outputs).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rw_to_leaf_volume_is_logarithmic() {
        let inst = gen::complete_binary_tree(9, Color::R, Color::B); // n = 1023
        let report = run_all(&inst, &RwToLeaf::default(), &config_with_tape(7)).unwrap();
        let s = report.summary();
        // Each step costs O(1) queries; whp the walk is ≤ 16 log n long.
        assert!(
            s.max_volume < 60 * 10,
            "volume should be O(log n), got {}",
            s.max_volume
        );
        assert!(s.max_volume < inst.n() / 2);
    }

    #[test]
    fn rw_to_leaf_under_budget_truncates_gracefully() {
        let inst = gen::complete_binary_tree(6, Color::R, Color::B);
        let config = RunConfig {
            tape: Some(RandomTape::private(3)),
            budget: Budget::volume(4),
            starts: StartSelection::All,
            exact_distance: true,
        };
        let report = run_all(&inst, &RwToLeaf::default(), &config).unwrap();
        // Many executions get truncated and output the fallback; the
        // labeling is then (almost surely) invalid — which is the point of
        // the truncation experiments.
        assert!(report.truncated() > 0);
        let outputs = report.complete_outputs().unwrap();
        assert!(count_violations(&LeafColoring, &inst, &outputs) > 0);
    }

    #[test]
    fn walks_agree_along_their_path() {
        // All nodes on the walk from the root output the same color as the
        // leaf the walk reaches — the coupling through r_w(0).
        let inst = gen::random_full_binary_tree(80, 2);
        let report = run_all(&inst, &RwToLeaf::default(), &config_with_tape(2)).unwrap();
        let outputs = report.complete_outputs().unwrap();
        assert!(check_solution(&LeafColoring, &inst, &outputs).is_ok());
    }

    #[test]
    fn secret_randomness_still_solves_from_each_root() {
        // §7.4: with secret randomness the walk can still use the *root's*
        // bits... but not other nodes' bits, so RWtoLeaf as written fails on
        // other nodes' bits and falls back. This documents the gap.
        let inst = gen::random_full_binary_tree(60, 4);
        let config = RunConfig {
            tape: Some(RandomTape::secret(4)),
            ..RunConfig::default()
        };
        let report = run_all(&inst, &RwToLeaf::default(), &config).unwrap();
        assert!(report.truncated() > 0, "RWtoLeaf needs non-secret bits");
    }
}
