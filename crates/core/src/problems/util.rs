//! Query-model exploration helpers shared by the solvers.
//!
//! Solvers repeatedly need the Definition 3.3 status of nodes, which in the
//! query model takes a handful of queries per node (follow both children and
//! check their parent back-pointers). [`Explorer`] wraps an oracle with view
//! and status caches so that each fact is established once per execution.

use std::collections::HashMap;
use vc_graph::Port;
use vc_model::oracle::{follow, NodeView, Oracle, QueryError};

/// An oracle wrapper with view/status caches and Bernoulli sampling from the
/// node's private bits.
pub struct Explorer<'o> {
    oracle: &'o mut dyn Oracle,
    views: HashMap<usize, NodeView>,
    internal: HashMap<usize, bool>,
    first_bits: HashMap<usize, bool>,
    bernoulli: HashMap<usize, bool>,
}

impl<'o> Explorer<'o> {
    /// Wraps an oracle.
    pub fn new(oracle: &'o mut dyn Oracle) -> Self {
        let root = oracle.root();
        let mut views = HashMap::new();
        views.insert(root.node, root);
        Self {
            oracle,
            views,
            internal: HashMap::new(),
            first_bits: HashMap::new(),
            bernoulli: HashMap::new(),
        }
    }

    /// The number of nodes `n` (global input).
    pub fn n(&self) -> usize {
        self.oracle.n()
    }

    /// The initiating node's view.
    pub fn root(&self) -> NodeView {
        self.oracle.root()
    }

    /// Follows an optional port label; `⊥` and malformed ports give `None`.
    ///
    /// # Errors
    ///
    /// Propagates oracle errors (budget exhaustion etc.).
    pub fn follow(
        &mut self,
        from: &NodeView,
        port: Option<Port>,
    ) -> Result<Option<NodeView>, QueryError> {
        let out = follow(self.oracle, from, port)?;
        if let Some(v) = out {
            self.views.insert(v.node, v);
        }
        Ok(out)
    }

    /// The parent node `P(v)` (with no back-pointer requirement).
    ///
    /// # Errors
    ///
    /// Propagates oracle errors.
    pub fn parent(&mut self, v: &NodeView) -> Result<Option<NodeView>, QueryError> {
        self.follow(&v.clone(), v.label.parent)
    }

    /// The left child `LC(v)` (no back-pointer requirement).
    ///
    /// # Errors
    ///
    /// Propagates oracle errors.
    pub fn left_child(&mut self, v: &NodeView) -> Result<Option<NodeView>, QueryError> {
        self.follow(&v.clone(), v.label.left_child)
    }

    /// The right child `RC(v)` (no back-pointer requirement).
    ///
    /// # Errors
    ///
    /// Propagates oracle errors.
    pub fn right_child(&mut self, v: &NodeView) -> Result<Option<NodeView>, QueryError> {
        self.follow(&v.clone(), v.label.right_child)
    }

    /// Whether `v` is internal per Definition 3.3, established with `O(1)`
    /// queries and cached.
    ///
    /// # Errors
    ///
    /// Propagates oracle errors.
    pub fn is_internal(&mut self, v: &NodeView) -> Result<bool, QueryError> {
        if let Some(&b) = self.internal.get(&v.node) {
            return Ok(b);
        }
        let b = self.compute_internal(v)?;
        self.internal.insert(v.node, b);
        Ok(b)
    }

    fn compute_internal(&mut self, v: &NodeView) -> Result<bool, QueryError> {
        let l = v.label;
        let (Some(lc_port), Some(rc_port)) = (l.left_child, l.right_child) else {
            return Ok(false);
        };
        if lc_port == rc_port || l.parent == Some(lc_port) || l.parent == Some(rc_port) {
            return Ok(false);
        }
        let Some(lc) = self.follow(v, Some(lc_port))? else {
            return Ok(false);
        };
        let Some(rc) = self.follow(v, Some(rc_port))? else {
            return Ok(false);
        };
        let back_lc = self.follow(&lc, lc.label.parent)?;
        if back_lc.map(|u| u.node) != Some(v.node) {
            return Ok(false);
        }
        let back_rc = self.follow(&rc, rc.label.parent)?;
        Ok(back_rc.map(|u| u.node) == Some(v.node))
    }

    /// Whether `v` is *consistent* (internal, or a leaf — i.e. its parent is
    /// internal; Definition 3.3).
    ///
    /// # Errors
    ///
    /// Propagates oracle errors.
    pub fn is_consistent(&mut self, v: &NodeView) -> Result<bool, QueryError> {
        if self.is_internal(v)? {
            return Ok(true);
        }
        match self.parent(v)? {
            Some(p) => self.is_internal(&p),
            None => Ok(false),
        }
    }

    /// The `G_T` children `(LC(v), RC(v))` of an internal node; `None` if
    /// `v` is not internal.
    ///
    /// # Errors
    ///
    /// Propagates oracle errors.
    pub fn gt_children(
        &mut self,
        v: &NodeView,
    ) -> Result<Option<(NodeView, NodeView)>, QueryError> {
        if !self.is_internal(v)? {
            return Ok(None);
        }
        let lc = self.left_child(v)?.expect("internal has LC");
        let rc = self.right_child(v)?.expect("internal has RC");
        Ok(Some((lc, rc)))
    }

    /// The first bit `r_v(0)` of the node's private string — cached so that
    /// repeated visits observe the same value, as Algorithm 1 requires.
    ///
    /// # Errors
    ///
    /// Propagates oracle errors (e.g. secret randomness of other nodes).
    pub fn first_bit(&mut self, node: usize) -> Result<bool, QueryError> {
        if let Some(&b) = self.first_bits.get(&node) {
            return Ok(b);
        }
        let b = self.oracle.rand_bit(node)?;
        self.first_bits.insert(node, b);
        Ok(b)
    }

    /// Bernoulli(`p`) sample from the node's private bits, cached per node —
    /// the way-point lottery of Proposition 5.14 (footnote 3 requires all
    /// visitors to agree on the outcome, hence the node's own randomness).
    ///
    /// Uses 30 bits of the node's string on first evaluation.
    ///
    /// # Errors
    ///
    /// Propagates oracle errors.
    pub fn bernoulli(&mut self, node: usize, p: f64) -> Result<bool, QueryError> {
        if let Some(&b) = self.bernoulli.get(&node) {
            return Ok(b);
        }
        let mut x = 0u32;
        for _ in 0..30 {
            x = (x << 1) | u32::from(self.oracle.rand_bit(node)?);
        }
        let threshold = (p.clamp(0.0, 1.0) * f64::from(1u32 << 30)) as u32;
        let b = x < threshold;
        self.bernoulli.insert(node, b);
        Ok(b)
    }

    /// A cached view by node handle, if this execution has seen it.
    pub fn view(&self, node: usize) -> Option<&NodeView> {
        self.views.get(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_graph::{gen, Color};
    use vc_model::{Budget, Execution, RandomTape};

    #[test]
    fn explorer_caches_status() {
        let inst = gen::complete_binary_tree(3, Color::R, Color::B);
        let mut ex = Execution::new(&inst, 0, None, Budget::unlimited());
        let mut xp = Explorer::new(&mut ex);
        let root = xp.root();
        assert!(xp.is_internal(&root).unwrap());
        // Second call answers from cache (same result).
        assert!(xp.is_internal(&root).unwrap());
        let leaf = xp.view(0).copied().unwrap();
        assert_eq!(leaf.node, 0);
        let lc = xp.left_child(&root).unwrap().unwrap();
        assert_eq!(lc.node, 1);
        assert!(xp.is_consistent(&lc).unwrap());
    }

    #[test]
    fn leaf_is_consistent_but_not_internal() {
        let inst = gen::complete_binary_tree(2, Color::R, Color::B);
        let mut ex = Execution::new(&inst, 3, None, Budget::unlimited());
        let mut xp = Explorer::new(&mut ex);
        let root = xp.root();
        assert!(!xp.is_internal(&root).unwrap());
        assert!(xp.is_consistent(&root).unwrap());
    }

    #[test]
    fn single_node_is_inconsistent() {
        let inst = gen::complete_binary_tree(0, Color::R, Color::B);
        let mut ex = Execution::new(&inst, 0, None, Budget::unlimited());
        let mut xp = Explorer::new(&mut ex);
        let root = xp.root();
        assert!(!xp.is_consistent(&root).unwrap());
    }

    #[test]
    fn first_bit_is_stable() {
        let inst = gen::complete_binary_tree(2, Color::R, Color::B);
        let tape = RandomTape::private(11);
        let mut ex = Execution::new(&inst, 0, Some(tape), Budget::unlimited());
        let mut xp = Explorer::new(&mut ex);
        let b1 = xp.first_bit(0).unwrap();
        let b2 = xp.first_bit(0).unwrap();
        assert_eq!(b1, b2);
        // And equals the tape's bit 0 for that node's id.
        assert_eq!(b1, tape.bit(inst.graph.id(0), 0));
    }

    #[test]
    fn bernoulli_extremes() {
        let inst = gen::complete_binary_tree(2, Color::R, Color::B);
        let tape = RandomTape::private(13);
        let mut ex = Execution::new(&inst, 0, Some(tape), Budget::unlimited());
        let mut xp = Explorer::new(&mut ex);
        assert!(!xp.bernoulli(0, 0.0).unwrap());
        let mut ex2 = Execution::new(&inst, 1, Some(tape), Budget::unlimited());
        let mut xp2 = Explorer::new(&mut ex2);
        assert!(xp2.bernoulli(1, 1.0).unwrap());
    }

    #[test]
    fn bernoulli_agrees_across_executions() {
        let inst = gen::complete_binary_tree(3, Color::R, Color::B);
        let tape = RandomTape::private(5);
        let p = 0.5;
        let mut ex1 = Execution::new(&inst, 1, Some(tape), Budget::unlimited());
        let mut xp1 = Explorer::new(&mut ex1);
        let b1 = xp1.bernoulli(1, p).unwrap();
        let mut ex2 = Execution::new(&inst, 1, Some(tape), Budget::unlimited());
        let mut xp2 = Explorer::new(&mut ex2);
        let b2 = xp2.bernoulli(1, p).unwrap();
        assert_eq!(b1, b2, "way-point lottery must be execution-independent");
    }
}
