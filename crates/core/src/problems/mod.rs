//! The problem constructions of the paper and their solvers.

pub mod balanced_tree;
pub mod classic;
pub mod hh;
pub mod hierarchical;
pub mod hybrid;
pub mod leaf_coloring;
pub mod util;
