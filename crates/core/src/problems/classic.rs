//! Classic reference LCLs for the landscape of Figures 1–2.
//!
//! The paper's preliminary observations (§1.2) place problems in four
//! classes. Classes A and B are already well understood; we implement one
//! representative of each so the landscape benches have measured points
//! below the `Ω(log n)` region:
//!
//! * [`TrivialLabel`] — class A: constant distance and volume.
//! * [`CycleColoring`] + [`ColeVishkin`] — class B: 3-coloring a
//!   consistently port-numbered directed cycle in `Θ(log* n)` distance *and*
//!   volume (Cole–Vishkin color reduction [15], the example given for the
//!   class-B collapse in §1.2).

use crate::lcl::{Lcl, Violation};
use vc_graph::{Instance, Port};
use vc_model::oracle::{follow, NodeView, Oracle, QueryError};
use vc_model::run::QueryAlgorithm;

/// Class-A reference problem: every node outputs the parity of its degree.
///
/// Checkable with radius 0 and solvable with volume 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrivialLabel;

impl Lcl for TrivialLabel {
    type Output = bool;

    fn name(&self) -> String {
        "DegreeParity".into()
    }

    fn check_radius(&self) -> u32 {
        0
    }

    fn check_node(&self, inst: &Instance, outputs: &[bool], v: usize) -> Result<(), Violation> {
        if outputs[v] == (inst.graph.degree(v) % 2 == 1) {
            Ok(())
        } else {
            Err(Violation {
                node: v,
                rule: "trivial:degree-parity",
            })
        }
    }
}

/// The constant-time solver for [`TrivialLabel`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TrivialSolver;

impl QueryAlgorithm for TrivialSolver {
    type Output = bool;

    fn name(&self) -> &'static str {
        "classic/trivial"
    }

    fn fallback(&self) -> bool {
        false
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<bool, QueryError> {
        Ok(oracle.root().degree % 2 == 1)
    }
}

/// 3-coloring of a consistently port-numbered directed cycle (port 1 =
/// successor, port 2 = predecessor): the canonical class-B LCL.
#[derive(Clone, Copy, Debug, Default)]
pub struct CycleColoring;

impl Lcl for CycleColoring {
    type Output = u8;

    fn name(&self) -> String {
        "Cycle3Coloring".into()
    }

    fn check_radius(&self) -> u32 {
        1
    }

    fn check_node(&self, inst: &Instance, outputs: &[u8], v: usize) -> Result<(), Violation> {
        if outputs[v] > 2 {
            return Err(Violation {
                node: v,
                rule: "cv:palette",
            });
        }
        let succ = inst.graph.neighbor(v, Port::new(1)).ok_or(Violation {
            node: v,
            rule: "cv:not-a-cycle",
        })?;
        if outputs[v] == outputs[succ] {
            return Err(Violation {
                node: v,
                rule: "cv:proper",
            });
        }
        Ok(())
    }
}

/// One Cole–Vishkin color-reduction step: given a node's color `x` and its
/// successor's color `y` (`x ≠ y`), produce `2j + bit_j(x)` where `j` is the
/// lowest bit position where they differ. Reduces `b`-bit palettes to
/// `2b`-value palettes while preserving properness.
fn cv_step(x: u64, y: u64) -> u64 {
    debug_assert_ne!(x, y, "Cole-Vishkin needs properly colored input");
    let j = (x ^ y).trailing_zeros() as u64;
    2 * j + ((x >> j) & 1)
}

/// The Cole–Vishkin solver: `Θ(log* n)` distance *and* volume.
///
/// With 64-bit identifiers, four reduction iterations shrink the palette to
/// six colors (`64 → 2·6+1 ≤ 13 → 2·3+1 ≤ 8 → 2·2+1 ≤ 6 → 6`); three final
/// rounds recolor classes 3, 4, 5 greedily. A node therefore needs the
/// identifiers of a window of 7 successors and 3 predecessors — the
/// `O(log* n)` neighborhood (constant for fixed-width identifiers, and the
/// measured class for the landscape figures).
#[derive(Clone, Copy, Debug, Default)]
pub struct ColeVishkin;

/// Number of CV iterations bringing `u64` identifiers to 6 colors.
const CV_ITERS: usize = 4;
/// Reduction rounds removing colors 3, 4, 5.
const REDUCE_ROUNDS: usize = 3;

impl ColeVishkin {
    /// Computes the final colors for a window of raw identifiers. Entry `i`
    /// of the result is only meaningful if the window extends at least
    /// `CV_ITERS + REDUCE_ROUNDS - r` beyond it; callers use the center.
    fn reduce(window: &[u64]) -> Vec<u64> {
        // CV iterations: color[i] <- step(color[i], color[i+1]).
        let mut colors: Vec<u64> = window.to_vec();
        for _ in 0..CV_ITERS {
            colors = colors.windows(2).map(|w| cv_step(w[0], w[1])).collect();
        }
        // Greedy removal of colors 3, 4, 5: a node of the removed class
        // picks the smallest color unused by both neighbors.
        for removed in 3..(3 + REDUCE_ROUNDS as u64) {
            let prev = colors.clone();
            for i in 1..prev.len() - 1 {
                if prev[i] == removed {
                    colors[i] = (0..3)
                        .find(|c| *c != prev[i - 1] && *c != prev[i + 1])
                        .expect("three colors suffice on a path");
                }
            }
            // Trim the boundary entries, which lack context.
            colors = colors[1..colors.len() - 1].to_vec();
        }
        colors
    }
}

impl QueryAlgorithm for ColeVishkin {
    type Output = u8;

    fn name(&self) -> &'static str {
        "classic/cole-vishkin"
    }

    fn fallback(&self) -> u8 {
        0
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<u8, QueryError> {
        let root = oracle.root();
        // Window of identifiers at offsets -REDUCE_ROUNDS ..= REDUCE_ROUNDS + CV_ITERS.
        let fwd_len = REDUCE_ROUNDS + CV_ITERS;
        let mut ids = vec![root.id];
        let mut cur: NodeView = root;
        for _ in 0..REDUCE_ROUNDS {
            let prev =
                follow(oracle, &cur, Some(Port::new(2)))?.ok_or(QueryError::AdversaryRefused)?;
            ids.insert(0, prev.id);
            cur = prev;
        }
        cur = root;
        for _ in 0..fwd_len {
            let next =
                follow(oracle, &cur, Some(Port::new(1)))?.ok_or(QueryError::AdversaryRefused)?;
            ids.push(next.id);
            cur = next;
        }
        // After CV_ITERS + REDUCE_ROUNDS reductions the window shrinks to a
        // single entry: the root's final color.
        let colors = Self::reduce(&ids);
        debug_assert_eq!(colors.len(), 1);
        Ok(colors[0] as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcl::check_solution;
    use vc_graph::gen;
    use vc_model::run::{run_all, RunConfig};

    #[test]
    fn trivial_problem_roundtrip() {
        let inst = gen::complete_binary_tree(3, vc_graph::Color::R, vc_graph::Color::B);
        let report = run_all(&inst, &TrivialSolver, &RunConfig::default()).unwrap();
        let outputs = report.complete_outputs().unwrap();
        assert!(check_solution(&TrivialLabel, &inst, &outputs).is_ok());
        assert_eq!(report.summary().max_volume, 1);
        assert_eq!(report.summary().max_distance, 0);
    }

    #[test]
    fn cv_step_preserves_properness() {
        // On any properly colored pair, outputs of adjacent applications
        // differ (classic CV invariant) — spot-check on a path of ids.
        let ids = [12u64, 7, 33, 180, 2, 99];
        let stepped: Vec<u64> = ids.windows(2).map(|w| cv_step(w[0], w[1])).collect();
        for w in stepped.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn cole_vishkin_three_colors_cycles() {
        for n in [3usize, 5, 8, 64, 257] {
            for seed in 0..3 {
                let inst = gen::directed_cycle(n, seed);
                let report = run_all(&inst, &ColeVishkin, &RunConfig::default()).unwrap();
                let outputs = report.complete_outputs().unwrap();
                let check = check_solution(&CycleColoring, &inst, &outputs);
                assert!(check.is_ok(), "n={n} seed={seed}: {check:?}");
                assert!(outputs.iter().all(|&c| c <= 2));
            }
        }
    }

    #[test]
    fn cole_vishkin_costs_are_constant_in_n() {
        let small = run_all(
            &gen::directed_cycle(16, 1),
            &ColeVishkin,
            &RunConfig::default(),
        )
        .unwrap();
        let large = run_all(
            &gen::directed_cycle(4096, 1),
            &ColeVishkin,
            &RunConfig::default(),
        )
        .unwrap();
        assert_eq!(
            small.summary().max_volume,
            large.summary().max_volume,
            "volume is O(log* n) = constant for u64 ids"
        );
        assert_eq!(large.summary().max_volume, 11); // 1 + 3 back + 7 forward
        assert_eq!(large.summary().max_distance, 7);
    }

    #[test]
    fn checker_rejects_monochrome() {
        let inst = gen::directed_cycle(5, 2);
        let outputs = vec![1u8; 5];
        let err = check_solution(&CycleColoring, &inst, &outputs).unwrap_err();
        assert_eq!(err.rule, "cv:proper");
        let outputs = vec![7u8; 5];
        let err = check_solution(&CycleColoring, &inst, &outputs).unwrap_err();
        assert_eq!(err.rule, "cv:palette");
    }
}
