//! BalancedTree (paper §4): logarithmic distance but *linear* volume, even
//! for randomized algorithms (via the disjointness embedding of Prop. 4.9).
//!
//! *Input*: a balanced tree labeling (Definition 4.1) — a tree labeling plus
//! lateral-neighbor labels `LN`/`RN`. *Output*: a pair `(β, p) ∈ {B,U} × P`.
//! A node's subtree admits the all-`B` labeling iff it is a complete
//! (balanced) binary tree with fully compatible lateral structure
//! (Lemmas 4.6–4.7).
//!
//! ## A note on Definition 4.2 (persistence)
//!
//! The paper states persistence as "`RN(RC(v)) = LN(LC(w))`" for
//! `w = RN(v)`. Taken literally this equates two *different* nodes
//! (`RN(RC(v))` should be `LC(w)` while `LN(LC(w))` should be `RC(v)`);
//! the intent — clear from the proof of Lemma 4.6 and Figure 5 — is that
//! consecutive siblings' children are laterally linked:
//! `RN(RC(v)) = LC(RN(v))` and symmetrically `LN(LC(v)) = RC(LN(v))`.
//! We implement that reading; together with *agreement* it is equivalent to
//! both of the paper's intended equations.
//!
//! ## A note on Definition 4.3 (condition 3(b))
//!
//! Condition 3(b) read literally requires `χ_out(v) = (U, LC(v))` whenever
//! `LC(v)` outputs `U` *and* `χ_out(v) = (U, RC(v))` whenever `RC(v)` does —
//! unsatisfiable when both children output `U`. Following the prose ("`p` is
//! a port corresponding to the first hop on a path to an incompatible node
//! below `v`"), we require: if some child outputs `U`, then `v` outputs
//! `(U, p)` with `p` pointing at a child that outputs `U`.

use crate::lcl::{Lcl, Violation};
use crate::output::{BtFlag, BtOutput};
use crate::problems::util::Explorer;
use std::collections::HashSet;
use vc_graph::{structure, Instance, NodeIdx, Port};
use vc_model::oracle::{NodeView, Oracle, QueryError};
use vc_model::run::QueryAlgorithm;

/// A node filter: the BalancedTree machinery can be evaluated on an induced
/// subgraph (Hybrid-THC restricts it to the level-1 nodes, Definition 6.1);
/// ports leading outside the kept set resolve to `⊥`.
pub type Keep<'a> = &'a dyn Fn(NodeIdx) -> bool;

fn res_in(inst: &Instance, v: NodeIdx, port: Option<Port>, keep: Keep<'_>) -> Option<NodeIdx> {
    inst.resolve(v, port).filter(|&u| keep(u))
}

/// Definition 3.3 internality evaluated on the subgraph induced by `keep`.
pub fn is_internal_in(inst: &Instance, v: NodeIdx, keep: Keep<'_>) -> bool {
    let l = inst.label(v);
    let (Some(lc_port), Some(rc_port)) = (l.left_child, l.right_child) else {
        return false;
    };
    if lc_port == rc_port || l.parent == Some(lc_port) || l.parent == Some(rc_port) {
        return false;
    }
    let (Some(lc), Some(rc)) = (
        res_in(inst, v, Some(lc_port), keep),
        res_in(inst, v, Some(rc_port), keep),
    ) else {
        return false;
    };
    res_in(inst, lc, inst.label(lc).parent, keep) == Some(v)
        && res_in(inst, rc, inst.label(rc).parent, keep) == Some(v)
}

/// Definition 3.3 status evaluated on the subgraph induced by `keep`.
pub fn status_in(inst: &Instance, v: NodeIdx, keep: Keep<'_>) -> structure::NodeStatus {
    if is_internal_in(inst, v, keep) {
        return structure::NodeStatus::Internal;
    }
    match res_in(inst, v, inst.label(v).parent, keep) {
        Some(p) if is_internal_in(inst, p, keep) => structure::NodeStatus::Leaf,
        _ => structure::NodeStatus::Inconsistent,
    }
}

/// Instance-level compatibility check (Definition 4.2) for a *consistent*
/// node `v`.
///
/// Returns `true` when every applicable condition (type-preserving,
/// agreement, siblings, persistence, leaves) holds.
pub fn is_compatible(inst: &Instance, v: NodeIdx) -> bool {
    is_compatible_in(inst, v, &|_| true)
}

/// [`is_compatible`] evaluated on the subgraph induced by `keep`.
pub fn is_compatible_in(inst: &Instance, v: NodeIdx, keep: Keep<'_>) -> bool {
    let internal = is_internal_in(inst, v, keep);
    let l = inst.label(v);
    let ln = res_in(inst, v, l.left_nbr, keep);
    let rn = res_in(inst, v, l.right_nbr, keep);

    // type-preserving / leaves: lateral neighbors share v's status.
    for u in [ln, rn].into_iter().flatten() {
        let u_internal = is_internal_in(inst, u, keep);
        if internal && !u_internal {
            return false;
        }
        if !internal && status_in(inst, u, keep) != structure::NodeStatus::Leaf {
            return false;
        }
    }
    // agreement.
    if let Some(u) = ln {
        if res_in(inst, u, inst.label(u).right_nbr, keep) != Some(v) {
            return false;
        }
    }
    if let Some(u) = rn {
        if res_in(inst, u, inst.label(u).left_nbr, keep) != Some(v) {
            return false;
        }
    }
    if internal {
        let lc = res_in(inst, v, l.left_child, keep).expect("internal");
        let rc = res_in(inst, v, l.right_child, keep).expect("internal");
        // siblings.
        if res_in(inst, lc, inst.label(lc).right_nbr, keep) != Some(rc)
            || res_in(inst, rc, inst.label(rc).left_nbr, keep) != Some(lc)
        {
            return false;
        }
        // persistence.
        if let Some(w) = rn {
            let a = res_in(inst, rc, inst.label(rc).right_nbr, keep);
            let b = res_in(inst, w, inst.label(w).left_child, keep);
            if a.is_none() || a != b {
                return false;
            }
        }
        if let Some(u) = ln {
            let a = res_in(inst, lc, inst.label(lc).left_nbr, keep);
            let b = res_in(inst, u, inst.label(u).right_child, keep);
            if a.is_none() || a != b {
                return false;
            }
        }
    }
    true
}

/// The BalancedTree LCL (Definition 4.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct BalancedTree;

impl Lcl for BalancedTree {
    type Output = BtOutput;

    fn name(&self) -> String {
        "BalancedTree".into()
    }

    fn check_radius(&self) -> u32 {
        3
    }

    fn check_node(&self, inst: &Instance, outputs: &[BtOutput], v: usize) -> Result<(), Violation> {
        check_bt_node_in(inst, &|u| Some(outputs[u]), v, &|_| true)
    }
}

/// The per-node validity conditions of Definition 4.3, evaluated on the
/// subgraph induced by `keep`, with outputs supplied by `get_out` (which may
/// report `None` for nodes that produced a non-BalancedTree output — a
/// violation whenever that output is actually referenced, as in mixed
/// Hybrid-THC labelings).
pub(crate) fn check_bt_node_in(
    inst: &Instance,
    get_out: &dyn Fn(NodeIdx) -> Option<BtOutput>,
    v: usize,
    keep: Keep<'_>,
) -> Result<(), Violation> {
    // Only consistent nodes are constrained (Definition 4.3).
    let status = status_in(inst, v, keep);
    if status == structure::NodeStatus::Inconsistent {
        return Ok(());
    }
    let Some(out) = get_out(v) else {
        return Err(Violation {
            node: v,
            rule: "4.3:non-pair-output",
        });
    };
    if !is_compatible_in(inst, v, keep) {
        // Condition 1.
        return if out == BtOutput::unbalanced(None) {
            Ok(())
        } else {
            Err(Violation {
                node: v,
                rule: "4.3:incompatible-outputs-U",
            })
        };
    }
    if status == structure::NodeStatus::Leaf {
        // Condition 2.
        return if out == BtOutput::balanced(inst.labels[v].parent) {
            Ok(())
        } else {
            Err(Violation {
                node: v,
                rule: "4.3:leaf-outputs-B-parent",
            })
        };
    }
    // Condition 3: compatible internal node.
    let lc = res_in(inst, v, inst.labels[v].left_child, keep).expect("internal");
    let rc = res_in(inst, v, inst.labels[v].right_child, keep).expect("internal");
    let (Some(lc_out), Some(rc_out)) = (get_out(lc), get_out(rc)) else {
        return Err(Violation {
            node: v,
            rule: "4.3:child-non-pair-output",
        });
    };
    let u_children: Vec<Option<Port>> = [
        (lc_out.flag == BtFlag::Unbalanced).then_some(inst.labels[v].left_child),
        (rc_out.flag == BtFlag::Unbalanced).then_some(inst.labels[v].right_child),
    ]
    .into_iter()
    .flatten()
    .collect();
    if !u_children.is_empty() {
        // Condition 3(b): point at a child that reported U.
        return if out.flag == BtFlag::Unbalanced && u_children.contains(&out.port) {
            Ok(())
        } else {
            Err(Violation {
                node: v,
                rule: "4.3:points-to-unbalanced-child",
            })
        };
    }
    if lc_out == BtOutput::balanced(inst.labels[lc].parent)
        && rc_out == BtOutput::balanced(inst.labels[rc].parent)
    {
        // Condition 3(a).
        return if out == BtOutput::balanced(inst.labels[v].parent) {
            Ok(())
        } else {
            Err(Violation {
                node: v,
                rule: "4.3:balanced-propagates",
            })
        };
    }
    Ok(())
}

/// Query-model compatibility check for a consistent node; mirrors
/// [`is_compatible`] with `O(1)` queries.
pub(crate) fn is_compatible_q(xp: &mut Explorer<'_>, v: &NodeView) -> Result<bool, QueryError> {
    let internal = xp.is_internal(v)?;
    let ln = xp.follow(v, v.label.left_nbr)?;
    let rn = xp.follow(v, v.label.right_nbr)?;
    for u in [ln, rn].into_iter().flatten() {
        if internal {
            if !xp.is_internal(&u)? {
                return Ok(false);
            }
        } else {
            // v is a leaf: u must be a leaf too.
            if xp.is_internal(&u)? {
                return Ok(false);
            }
            let up = xp.parent(&u)?;
            match up {
                Some(p) if xp.is_internal(&p)? => {}
                _ => return Ok(false),
            }
        }
    }
    if let Some(u) = ln {
        let back = xp.follow(&u, u.label.right_nbr)?;
        if back.map(|x| x.node) != Some(v.node) {
            return Ok(false);
        }
    }
    if let Some(u) = rn {
        let back = xp.follow(&u, u.label.left_nbr)?;
        if back.map(|x| x.node) != Some(v.node) {
            return Ok(false);
        }
    }
    if internal {
        let (lc, rc) = xp.gt_children(v)?.expect("internal");
        let sib_r = xp.follow(&lc, lc.label.right_nbr)?;
        if sib_r.map(|x| x.node) != Some(rc.node) {
            return Ok(false);
        }
        let sib_l = xp.follow(&rc, rc.label.left_nbr)?;
        if sib_l.map(|x| x.node) != Some(lc.node) {
            return Ok(false);
        }
        if let Some(w) = rn {
            let a = xp.follow(&rc, rc.label.right_nbr)?;
            let b = xp.follow(&w, w.label.left_child)?;
            match (a, b) {
                (Some(a), Some(b)) if a.node == b.node => {}
                _ => return Ok(false),
            }
        }
        if let Some(u) = ln {
            let a = xp.follow(&lc, lc.label.left_nbr)?;
            let b = xp.follow(&u, u.label.right_child)?;
            match (a, b) {
                (Some(a), Some(b)) if a.node == b.node => {}
                _ => return Ok(false),
            }
        }
    }
    Ok(true)
}

/// The deterministic `O(log n)`-distance solver of Proposition 4.8.
///
/// An internal compatible node explores its `G_T`-descendants down to its
/// nearest-leaf depth `d` (≤ `log n`). By Lemma 4.6, if the subtree is not a
/// fully compatible balanced tree there is an incompatible descendant within
/// depth `d`; the node then outputs `(U, p)` with `p` the first hop towards
/// the nearest (left-most) incompatible descendant, otherwise `(B, P(v))`.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistanceSolver;

impl QueryAlgorithm for DistanceSolver {
    type Output = BtOutput;

    fn name(&self) -> &'static str {
        "balanced-tree/distance"
    }

    fn fallback(&self) -> BtOutput {
        BtOutput::unbalanced(None)
    }

    fn run(&self, oracle: &mut dyn Oracle) -> Result<BtOutput, QueryError> {
        let mut xp = Explorer::new(oracle);
        let root = xp.root();
        solve_bt(&mut xp, root)
    }
}

/// The Proposition 4.8 strategy as a reusable routine: solve BalancedTree
/// for `root` through an [`Explorer`]. Also the level-1 subroutine of the
/// Hybrid-THC solvers (§6).
pub(crate) fn solve_bt(xp: &mut Explorer<'_>, root: NodeView) -> Result<BtOutput, QueryError> {
    {
        if !xp.is_consistent(&root)? {
            // Unconstrained; any output is valid.
            return Ok(BtOutput::balanced(None));
        }
        if !is_compatible_q(xp, &root)? {
            return Ok(BtOutput::unbalanced(None));
        }
        if !xp.is_internal(&root)? {
            // Compatible leaf.
            return Ok(BtOutput::balanced(root.label.parent));
        }

        // BFS descendants level by level, tracking the first hop.
        let cap = 2 * (usize::BITS - (xp.n().max(2) - 1).leading_zeros()) + 4;
        let mut frontier: Vec<(NodeView, Option<Port>)> = vec![(root, None)];
        let mut seen: HashSet<usize> = HashSet::from([root.node]);
        let mut levels: Vec<Vec<(NodeView, Option<Port>)>> = Vec::new();
        let mut found_leaf = false;
        for _depth in 0..=cap as usize {
            if frontier.is_empty() {
                break;
            }
            levels.push(frontier.clone());
            if found_leaf {
                break; // the level containing the nearest leaf is complete
            }
            let mut next = Vec::new();
            for (v, hop) in &frontier {
                match xp.gt_children(v)? {
                    None => {
                        found_leaf = true;
                    }
                    Some((lc, rc)) => {
                        let lc_hop = hop.or(v.label.left_child);
                        let rc_hop = hop.or(v.label.right_child);
                        if seen.insert(lc.node) {
                            next.push((lc, lc_hop));
                        }
                        if seen.insert(rc.node) {
                            next.push((rc, rc_hop));
                        }
                    }
                }
            }
            frontier = next;
        }
        // Scan descendants in (depth, left-to-right) order; the first
        // incompatible one decides.
        for level in levels.iter().skip(1) {
            for (w, hop) in level {
                if !is_compatible_q(xp, w)? {
                    return Ok(BtOutput::unbalanced(*hop));
                }
            }
        }
        Ok(BtOutput::balanced(root.label.parent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcl::check_solution;
    use vc_graph::gen;
    use vc_model::run::{run_all, RunConfig};

    #[test]
    fn compatible_instance_is_fully_compatible() {
        let (inst, _) = gen::balanced_tree_compatible(4);
        for v in 0..inst.n() {
            if structure::status(&inst, v).is_consistent() {
                assert!(is_compatible(&inst, v), "node {v} should be compatible");
            }
        }
    }

    #[test]
    fn disjointness_marks_exactly_intersections() {
        let a = vec![false, true, true, false];
        let b = vec![true, true, false, false];
        let (inst, meta) = gen::disjointness_embedding(&a, &b);
        for (i, &vi) in meta.penultimate.iter().enumerate() {
            assert_eq!(
                is_compatible(&inst, vi),
                !(a[i] && b[i]),
                "pair {i} compatibility"
            );
        }
        // Everyone else stays compatible.
        for v in 0..inst.n() {
            if meta.penultimate.contains(&v) {
                continue;
            }
            if structure::status(&inst, v).is_consistent() {
                assert!(is_compatible(&inst, v), "node {v}");
            }
        }
    }

    #[test]
    fn all_balanced_output_accepted_on_compatible_instance() {
        let (inst, _) = gen::balanced_tree_compatible(3);
        let outputs: Vec<BtOutput> = (0..inst.n())
            .map(|v| BtOutput::balanced(inst.labels[v].parent))
            .collect();
        assert!(check_solution(&BalancedTree, &inst, &outputs).is_ok());
    }

    #[test]
    fn checker_rejects_unanimous_b_on_intersecting_embedding() {
        // Lemma 4.7 converse: with an incompatible node, ancestors cannot
        // all claim B.
        let (inst, _) = gen::disjointness_embedding(&[true, false], &[true, false]);
        let outputs: Vec<BtOutput> = (0..inst.n())
            .map(|v| BtOutput::balanced(inst.labels[v].parent))
            .collect();
        assert!(check_solution(&BalancedTree, &inst, &outputs).is_err());
    }

    #[test]
    fn solver_outputs_all_balanced_on_compatible_instance() {
        let (inst, meta) = gen::balanced_tree_compatible(4);
        let report = run_all(&inst, &DistanceSolver, &RunConfig::default()).unwrap();
        let outputs = report.complete_outputs().unwrap();
        assert!(check_solution(&BalancedTree, &inst, &outputs).is_ok());
        assert_eq!(outputs[meta.root], BtOutput::balanced(None));
        assert!(outputs.iter().all(|o| o.flag == BtFlag::Balanced));
    }

    #[test]
    fn solver_flags_unbalanced_on_intersecting_embedding() {
        let a = vec![false, true, false, false];
        let b = vec![false, true, false, false];
        let (inst, meta) = gen::disjointness_embedding(&a, &b);
        let report = run_all(&inst, &DistanceSolver, &RunConfig::default()).unwrap();
        let outputs = report.complete_outputs().unwrap();
        assert!(check_solution(&BalancedTree, &inst, &outputs).is_ok());
        // The root must report U (Lemma 4.7).
        assert_eq!(outputs[meta.root].flag, BtFlag::Unbalanced);
        // The incompatible v_1 reports (U, ⊥).
        assert_eq!(outputs[meta.penultimate[1]], BtOutput::unbalanced(None));
    }

    #[test]
    fn solver_valid_on_disjoint_embedding() {
        let a = vec![true, false, true, false];
        let b = vec![false, true, false, true];
        let (inst, meta) = gen::disjointness_embedding(&a, &b);
        let report = run_all(&inst, &DistanceSolver, &RunConfig::default()).unwrap();
        let outputs = report.complete_outputs().unwrap();
        assert!(check_solution(&BalancedTree, &inst, &outputs).is_ok());
        assert_eq!(outputs[meta.root].flag, BtFlag::Balanced);
    }

    #[test]
    fn solver_valid_on_unbalanced_tree() {
        let (inst, meta) = gen::unbalanced_tree(3);
        let report = run_all(&inst, &DistanceSolver, &RunConfig::default()).unwrap();
        let outputs = report.complete_outputs().unwrap();
        assert!(check_solution(&BalancedTree, &inst, &outputs).is_ok());
        assert_eq!(outputs[meta.root].flag, BtFlag::Unbalanced);
    }

    #[test]
    fn solver_distance_is_logarithmic_volume_linear_at_root() {
        let (inst, meta) = gen::balanced_tree_compatible(7);
        let report = run_all(&inst, &DistanceSolver, &RunConfig::default()).unwrap();
        let s = report.summary();
        // Distance ≈ depth + O(1); the +O(1) comes from compatibility
        // checks touching lateral neighbors and grandchildren.
        assert!(s.max_distance <= 7 + 3, "max distance {}", s.max_distance);
        // The root had to scan its whole subtree: volume Θ(n).
        let root_rec = report.records.iter().find(|r| r.root == meta.root).unwrap();
        assert!(root_rec.volume > inst.n() / 2);
        assert!(check_solution(&BalancedTree, &inst, &report.complete_outputs().unwrap()).is_ok());
    }

    #[test]
    fn checker_rejects_orphan_u_pointer() {
        let (inst, meta) = gen::balanced_tree_compatible(2);
        let mut outputs: Vec<BtOutput> = (0..inst.n())
            .map(|v| BtOutput::balanced(inst.labels[v].parent))
            .collect();
        // Root claims U towards its left child although the child says B.
        outputs[meta.root] = BtOutput::unbalanced(inst.labels[meta.root].left_child);
        let err = check_solution(&BalancedTree, &inst, &outputs).unwrap_err();
        assert_eq!(err.node, meta.root);
        assert_eq!(err.rule, "4.3:balanced-propagates");
    }

    #[test]
    fn checker_rejects_ignoring_unbalanced_child() {
        let a = vec![true, true];
        let b = vec![true, true];
        let (inst, meta) = gen::disjointness_embedding(&a, &b);
        let report = run_all(&inst, &DistanceSolver, &RunConfig::default()).unwrap();
        let mut outputs = report.complete_outputs().unwrap();
        // The root's children include a U-child; force the root to claim B.
        outputs[meta.root] = BtOutput::balanced(None);
        let err = check_solution(&BalancedTree, &inst, &outputs).unwrap_err();
        assert_eq!(err.rule, "4.3:points-to-unbalanced-child");
    }

    #[test]
    fn leaf_must_echo_parent_port() {
        let (inst, meta) = gen::balanced_tree_compatible(2);
        let leaf = meta.leaves[0];
        let mut outputs: Vec<BtOutput> = (0..inst.n())
            .map(|v| BtOutput::balanced(inst.labels[v].parent))
            .collect();
        outputs[leaf] = BtOutput::balanced(None);
        let err = check_solution(&BalancedTree, &inst, &outputs).unwrap_err();
        assert_eq!(err.node, leaf);
        assert_eq!(err.rule, "4.3:leaf-outputs-B-parent");
    }
}
