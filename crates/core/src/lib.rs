//! # vc-core
//!
//! The paper's primary contribution: the LCL formalism (Definition 2.6) and
//! the five problem constructions of Table 1 with their upper-bound solvers,
//! plus the classic problems populating the landscape of Figures 1–2.
//!
//! | Problem | Defined in | Checker | Solvers |
//! |---|---|---|---|
//! | LeafColoring | §3 | [`problems::leaf_coloring::LeafColoring`] | deterministic `O(log n)`-distance (Prop. 3.9), randomized `O(log n)`-volume (`RWtoLeaf`, Alg. 1 / Prop. 3.10) |
//! | BalancedTree | §4 | [`problems::balanced_tree::BalancedTree`] | deterministic `O(log n)`-distance (Prop. 4.8) |
//! | Hierarchical-THC(k) | §5 | [`problems::hierarchical::HierarchicalThc`] | deterministic `O(k·n^{1/k})`-distance (`RecursiveHTHC`, Alg. 2 / Prop. 5.12), randomized `Θ̃(n^{1/k})`-volume way-point variant (Prop. 5.14) |
//! | Hybrid-THC(k) | §6 | [`problems::hybrid::HybridThc`] | deterministic `O(log n)`-distance, randomized `Θ̃(n^{1/k})`-volume |
//! | HH-THC(k, ℓ) | §6.1 | [`problems::hh::HhThc`] | dispatching combinations of the above |
//!
//! Everything runs in the query model of `vc-model`; validity is verified by
//! the generic LCL checker in [`lcl`].

pub mod congest;
pub mod lcl;
pub mod output;
pub mod problems;

pub use lcl::{check_solution, Lcl, Violation};
pub use output::{BtFlag, BtOutput, HybridOutput, ThcColor};
