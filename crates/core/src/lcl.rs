//! Locally checkable labelings (Definition 2.6) and the global checker.
//!
//! An LCL is a graph problem over finite input/output alphabets whose global
//! validity is equivalent to per-node validity in some constant-radius
//! neighborhood. Each problem implements [`Lcl::check_node`], which examines
//! only the radius-[`Lcl::check_radius`] ball around the node;
//! [`check_solution`] quantifies it over all nodes and reports the first
//! violated constraint with the rule that failed — the debuggability hook the
//! solver tests lean on.

use std::error::Error;
use std::fmt;
use vc_graph::Instance;

/// A violated local constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The node at which the constraint is anchored.
    pub node: usize,
    /// Identifier of the violated rule, e.g. `"3.4:leaf-keeps-color"`.
    pub rule: &'static str,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {} violates rule {}", self.node, self.rule)
    }
}

impl Error for Violation {}

/// A locally checkable labeling problem (Definition 2.6).
///
/// Implementations must only inspect the radius-`check_radius` neighborhood
/// of `v` inside `check_node` — that restriction is what makes the problem an
/// LCL (Lemmas 3.5, 4.4, 5.8, 6.2 argue it for each construction).
pub trait Lcl {
    /// The finite output alphabet.
    type Output: Clone + fmt::Debug + PartialEq;

    /// Human-readable problem name.
    fn name(&self) -> String;

    /// The constant checkability radius `c` of Definition 2.6.
    fn check_radius(&self) -> u32;

    /// Verifies the constraint anchored at `v` given the full output
    /// labeling.
    ///
    /// # Errors
    ///
    /// Returns the violated rule, if any.
    fn check_node(
        &self,
        inst: &Instance,
        outputs: &[Self::Output],
        v: usize,
    ) -> Result<(), Violation>;
}

/// Checks a complete output labeling against an LCL: valid iff every node's
/// local constraint holds (Definition 2.6).
///
/// # Errors
///
/// Returns the first violation in node order.
///
/// # Panics
///
/// Panics if `outputs.len() != inst.n()`.
pub fn check_solution<P: Lcl>(
    problem: &P,
    inst: &Instance,
    outputs: &[P::Output],
) -> Result<(), Violation> {
    assert_eq!(
        outputs.len(),
        inst.n(),
        "output labeling must cover every node"
    );
    for v in 0..inst.n() {
        problem.check_node(inst, outputs, v)?;
    }
    Ok(())
}

/// Counts all violations instead of stopping at the first — used by
/// experiments that estimate failure probabilities of truncated algorithms.
pub fn count_violations<P: Lcl>(problem: &P, inst: &Instance, outputs: &[P::Output]) -> usize {
    (0..inst.n())
        .filter(|&v| problem.check_node(inst, outputs, v).is_err())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_graph::{GraphBuilder, NodeLabel};

    /// Toy LCL: every node outputs its own degree.
    struct DegreeEcho;

    impl Lcl for DegreeEcho {
        type Output = usize;

        fn name(&self) -> String {
            "degree-echo".into()
        }

        fn check_radius(&self) -> u32 {
            0
        }

        fn check_node(
            &self,
            inst: &Instance,
            outputs: &[usize],
            v: usize,
        ) -> Result<(), Violation> {
            if outputs[v] == inst.graph.degree(v) {
                Ok(())
            } else {
                Err(Violation {
                    node: v,
                    rule: "degree-echo:mismatch",
                })
            }
        }
    }

    fn path3() -> Instance {
        let mut b = GraphBuilder::with_nodes(3);
        b.connect_auto(0, 1).unwrap();
        b.connect_auto(1, 2).unwrap();
        Instance::new(b.build().unwrap(), vec![NodeLabel::empty(); 3])
    }

    #[test]
    fn accepts_valid_labeling() {
        let inst = path3();
        assert!(check_solution(&DegreeEcho, &inst, &[1, 2, 1]).is_ok());
    }

    #[test]
    fn reports_first_violation() {
        let inst = path3();
        let err = check_solution(&DegreeEcho, &inst, &[1, 0, 0]).unwrap_err();
        assert_eq!(err.node, 1);
        assert_eq!(err.rule, "degree-echo:mismatch");
        assert!(err.to_string().contains("node 1"));
    }

    #[test]
    fn counts_all_violations() {
        let inst = path3();
        assert_eq!(count_violations(&DegreeEcho, &inst, &[1, 0, 0]), 2);
        assert_eq!(count_violations(&DegreeEcho, &inst, &[1, 2, 1]), 0);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn wrong_length_panics() {
        let inst = path3();
        let _ = check_solution(&DegreeEcho, &inst, &[1]);
    }
}
