//! Iterated logarithms.

/// Base-2 logarithm of `n` as `f64`, with `log2f(x) = 0` for `x ≤ 1`.
pub fn log2f(x: f64) -> f64 {
    if x <= 1.0 {
        0.0
    } else {
        x.log2()
    }
}

/// The iterated logarithm `log* n`: the number of times `log2` must be
/// applied before the value drops to at most 1.
///
/// `log_star(1) = 0`, `log_star(2) = 1`, `log_star(4) = 2`,
/// `log_star(16) = 3`, `log_star(65536) = 4`.
pub fn log_star(n: f64) -> u32 {
    let mut x = n;
    let mut i = 0;
    while x > 1.0 {
        x = x.log2();
        i += 1;
        if i > 64 {
            break; // unreachable for finite inputs; guard anyway
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_log_star_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
        assert_eq!(log_star(1e12), 5);
    }

    #[test]
    fn log2f_clamps() {
        assert_eq!(log2f(0.5), 0.0);
        assert_eq!(log2f(1.0), 0.0);
        assert!((log2f(8.0) - 3.0).abs() < 1e-12);
    }
}
