//! Tail bounds used by the paper's analyses (§2.6).
//!
//! These are the *bounds themselves* as executable functions, so tests can
//! verify them against empirical samples — e.g. the negative-binomial bound
//! of Lemma 2.12 drives the `O(log n)`-volume claim for `RWtoLeaf`
//! (Proposition 3.10).

/// Chernoff upper-tail bound (Lemma 2.11, Eq. (3)):
/// `Pr(Y ≥ (1+δ)μ) ≤ exp(−μ δ² / 3)` for `0 < δ < 1`.
///
/// # Panics
///
/// Panics unless `0 < delta < 1` and `mu > 0`.
pub fn chernoff_upper(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "Chernoff needs 0 < δ < 1");
    assert!(mu > 0.0, "mean must be positive");
    (-mu * delta * delta / 3.0).exp()
}

/// Chernoff lower-tail bound (Lemma 2.11, Eq. (4)):
/// `Pr(Y ≤ (1−δ)μ) ≤ exp(−μ δ² / 2)` for `0 < δ < 1`.
///
/// # Panics
///
/// Panics unless `0 < delta < 1` and `mu > 0`.
pub fn chernoff_lower(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "Chernoff needs 0 < δ < 1");
    assert!(mu > 0.0, "mean must be positive");
    (-mu * delta * delta / 2.0).exp()
}

/// Negative-binomial tail bound (Lemma 2.12): for `N ∼ N(k, p)` (number of
/// Bernoulli(p) trials until `k` successes),
/// `Pr(N > c·k/p) ≤ exp(−k (c−1)² / (2c))` for `c > 1`.
///
/// # Panics
///
/// Panics unless `c > 1`, `k > 0`, `0 < p ≤ 1`.
pub fn negative_binomial_tail(k: f64, p: f64, c: f64) -> f64 {
    assert!(c > 1.0, "Lemma 2.12 needs c > 1");
    assert!(k > 0.0 && p > 0.0 && p <= 1.0);
    (-k * (c - 1.0) * (c - 1.0) / (2.0 * c)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Empirical check of the Chernoff upper bound: sample sums of
    /// Bernoullis and compare the empirical tail with the bound.
    #[test]
    fn chernoff_upper_holds_empirically() {
        let mut rng = StdRng::seed_from_u64(1);
        let (m, p, delta) = (200usize, 0.5f64, 0.5f64);
        let mu = m as f64 * p;
        let trials = 2000;
        let exceed = (0..trials)
            .filter(|_| {
                let y: usize = (0..m).filter(|_| rng.random_bool(p)).count();
                (y as f64) >= (1.0 + delta) * mu
            })
            .count();
        let empirical = exceed as f64 / trials as f64;
        // The bound must dominate the empirical tail (with slack for noise).
        assert!(
            empirical <= chernoff_upper(mu, delta) + 0.02,
            "empirical {empirical} vs bound {}",
            chernoff_upper(mu, delta)
        );
    }

    #[test]
    fn chernoff_lower_holds_empirically() {
        let mut rng = StdRng::seed_from_u64(2);
        let (m, p, delta) = (200usize, 0.5f64, 0.5f64);
        let mu = m as f64 * p;
        let trials = 2000;
        let below = (0..trials)
            .filter(|_| {
                let y: usize = (0..m).filter(|_| rng.random_bool(p)).count();
                (y as f64) <= (1.0 - delta) * mu
            })
            .count();
        let empirical = below as f64 / trials as f64;
        assert!(empirical <= chernoff_lower(mu, delta) + 0.02);
    }

    /// Empirical check of Lemma 2.12 with k = log n, p = 1/2, c = 16 — the
    /// exact parameters of the claim inside Proposition 3.10.
    #[test]
    fn negative_binomial_tail_holds_empirically() {
        let mut rng = StdRng::seed_from_u64(3);
        let (k, p, c) = (10.0f64, 0.5f64, 4.0f64);
        let threshold = c * k / p;
        let trials = 4000;
        let exceed = (0..trials)
            .filter(|_| {
                let mut successes = 0.0;
                let mut n = 0.0;
                while successes < k {
                    n += 1.0;
                    if rng.random_bool(p) {
                        successes += 1.0;
                    }
                }
                n > threshold
            })
            .count();
        let empirical = exceed as f64 / trials as f64;
        assert!(
            empirical <= negative_binomial_tail(k, p, c) + 0.01,
            "empirical {empirical} vs bound {}",
            negative_binomial_tail(k, p, c)
        );
    }

    #[test]
    fn bounds_decrease_in_mu_and_k() {
        assert!(chernoff_upper(20.0, 0.5) < chernoff_upper(10.0, 0.5));
        assert!(chernoff_lower(20.0, 0.5) < chernoff_lower(10.0, 0.5));
        assert!(negative_binomial_tail(20.0, 0.5, 2.0) < negative_binomial_tail(10.0, 0.5, 2.0));
    }

    #[test]
    fn proposition_3_10_constant() {
        // The paper's claim: Pr(|π'_v| ≥ 16 log n) ≤ 1/n³ via
        // Pr(N > 16 log n) with N ∼ N(log n, 1/2), i.e. c = 8.
        let log_n = 20.0; // n ≈ 10^6
        let bound = negative_binomial_tail(log_n, 0.5, 8.0);
        let n_cubed_inv = (2.0f64.powf(log_n)).powi(-3);
        assert!(bound < 1e-10);
        // The paper claims the bound is below n^{-3}.
        assert!(bound <= n_cubed_inv * 10.0);
    }

    #[test]
    #[should_panic(expected = "0 < δ < 1")]
    fn chernoff_rejects_bad_delta() {
        let _ = chernoff_upper(10.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "c > 1")]
    fn negbin_rejects_bad_c() {
        let _ = negative_binomial_tail(10.0, 0.5, 1.0);
    }
}
