//! # vc-stats
//!
//! Statistical substrate for the volume-complexity experiments:
//!
//! * [`tail`] — the Chernoff bounds of Lemma 2.11 and the negative-binomial
//!   tail bound of Lemma 2.12, as executable inequalities.
//! * [`logstar`] — iterated logarithms (`log* n` appears throughout the
//!   landscape of Figures 1–2).
//! * [`fit`] — complexity-class fitting: turning a measured `(n, cost)`
//!   curve into a claimed `Θ`-class, used by every experiment harness to
//!   compare measured growth against the paper's Table 1.

pub mod fit;
pub mod logstar;
pub mod tail;

pub use fit::{fit_complexity, ClassFamily, ComplexityClass, FitResult};
pub use logstar::{log2f, log_star};
