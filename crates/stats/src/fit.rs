//! Complexity-class fitting: turning measured `(n, cost)` curves into
//! claimed `Θ`-classes.
//!
//! The paper's results are asymptotic classes (Table 1); our experiments
//! measure exact worst-case costs on instance sweeps. This module fits the
//! measured curve `cost(n) ≈ c · g(n)` against every candidate class `g` in
//! the landscape of Figures 1–3, scoring each by normalized RMSE, and
//! reports the best-fitting class. The polynomial class fits its exponent
//! `α` from a log–log regression, so `Θ(n^{1/k})` families report `α ≈ 1/k`.

use crate::logstar::{log2f, log_star};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Candidate growth classes from the paper's landscape figures.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ComplexityClass {
    /// `Θ(1)` — class A.
    Constant,
    /// `Θ(log* n)` — class B.
    LogStar,
    /// `Θ(log log n)` — the randomized shattering region.
    LogLog,
    /// `Θ(log n)` — class C/D boundary.
    Log,
    /// `Θ(log² n)` — polylog region (the `Θ̃` factors).
    LogSquared,
    /// `Θ(n^α)` with a fitted exponent `0 < α < 1`.
    Poly {
        /// Fitted exponent.
        alpha: f64,
    },
    /// `Θ(n / log n)` — the Proposition 5.20 lower-bound shape.
    NOverLog,
    /// `Θ(n)` — global problems.
    Linear,
}

/// Coarse Θ-family of a fitted class, matching the three regimes the
/// paper's Table 1 separates: bounded/near-bounded volume, logarithmic
/// volume (`Θ(log n)`, up to polylog factors), and near-linear volume
/// (`Θ(n)` and its `n/log n` / `n^{α≈1}` neighbours).
///
/// The empirical classifier reports families rather than raw classes so a
/// fit that lands on, say, `Θ(n^{0.97})` instead of `Θ(n)` on a noisy
/// curve still machine-checks as "linear-family" — the distinction Table 1
/// actually draws.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassFamily {
    /// `Θ(1)`, `Θ(log* n)`, `Θ(log log n)` — the sub-logarithmic regime.
    Bounded,
    /// `Θ(log n)` and `Θ(log² n)` — the logarithmic/polylog regime.
    Logarithmic,
    /// Genuinely polynomial but sublinear: `Θ(n^α)` with `α` bounded away
    /// from both 0 and 1 (e.g. the `Θ(n^{1/k})` hierarchy of Theorem 5.6).
    Polynomial,
    /// `Θ(n)`, `Θ(n/log n)` and `Θ(n^α)` with `α ≈ 1` — the near-linear
    /// regime of the global problems.
    NearLinear,
}

impl fmt::Display for ClassFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassFamily::Bounded => write!(f, "bounded"),
            ClassFamily::Logarithmic => write!(f, "logarithmic"),
            ClassFamily::Polynomial => write!(f, "polynomial"),
            ClassFamily::NearLinear => write!(f, "near-linear"),
        }
    }
}

impl ComplexityClass {
    /// The coarse [`ClassFamily`] this class belongs to.
    ///
    /// Polynomial fits with `α ≥ 0.9` count as near-linear (a noisy `Θ(n)`
    /// curve often fits `n^{0.9..1}` marginally better than `n`).
    pub fn family(&self) -> ClassFamily {
        match *self {
            ComplexityClass::Constant | ComplexityClass::LogStar | ComplexityClass::LogLog => {
                ClassFamily::Bounded
            }
            ComplexityClass::Log | ComplexityClass::LogSquared => ClassFamily::Logarithmic,
            ComplexityClass::Poly { alpha } if alpha >= 0.9 => ClassFamily::NearLinear,
            ComplexityClass::Poly { .. } => ClassFamily::Polynomial,
            ComplexityClass::NOverLog | ComplexityClass::Linear => ClassFamily::NearLinear,
        }
    }

    /// The growth function `g(n)` of the class.
    pub fn g(&self, n: f64) -> f64 {
        match *self {
            ComplexityClass::Constant => 1.0,
            ComplexityClass::LogStar => f64::from(log_star(n)).max(1.0),
            ComplexityClass::LogLog => log2f(log2f(n)).max(1.0),
            ComplexityClass::Log => log2f(n).max(1.0),
            ComplexityClass::LogSquared => {
                let l = log2f(n).max(1.0);
                l * l
            }
            ComplexityClass::Poly { alpha } => n.powf(alpha),
            ComplexityClass::NOverLog => n / log2f(n).max(1.0),
            ComplexityClass::Linear => n,
        }
    }

    /// Whether two classes agree (polynomial exponents within `tol`).
    pub fn matches(&self, other: &ComplexityClass, tol: f64) -> bool {
        match (self, other) {
            (ComplexityClass::Poly { alpha: a }, ComplexityClass::Poly { alpha: b }) => {
                (a - b).abs() <= tol
            }
            _ => self == other,
        }
    }
}

impl fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ComplexityClass::Constant => write!(f, "Θ(1)"),
            ComplexityClass::LogStar => write!(f, "Θ(log* n)"),
            ComplexityClass::LogLog => write!(f, "Θ(log log n)"),
            ComplexityClass::Log => write!(f, "Θ(log n)"),
            ComplexityClass::LogSquared => write!(f, "Θ(log² n)"),
            ComplexityClass::Poly { alpha } => write!(f, "Θ(n^{alpha:.2})"),
            ComplexityClass::NOverLog => write!(f, "Θ(n/log n)"),
            ComplexityClass::Linear => write!(f, "Θ(n)"),
        }
    }
}

/// Result of fitting a measured curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FitResult {
    /// The best-fitting class.
    pub class: ComplexityClass,
    /// Fitted slope `c` in `cost ≈ a + c · g(n)`.
    pub scale: f64,
    /// Fitted intercept `a`.
    pub intercept: f64,
    /// Normalized RMSE of the winning class.
    pub score: f64,
    /// Score of every candidate, best first.
    pub candidates: Vec<(ComplexityClass, f64)>,
}

impl fmt::Display for FitResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (c ≈ {:.2}, nrmse {:.3})",
            self.class, self.scale, self.score
        )
    }
}

/// Affine least-squares fit `y ≈ a + c · g(n)` (the intercept absorbs the
/// additive constants every real algorithm has), returning the slope `c`
/// and the normalized RMSE. Fits with a negative slope are rejected (a
/// decreasing "growth" curve is not evidence for the class).
fn score_class(samples: &[(f64, f64)], class: &ComplexityClass) -> (f64, f64, f64) {
    let m = samples.len() as f64;
    let mut sg = 0.0;
    let mut sy = 0.0;
    let mut sgg = 0.0;
    let mut sgy = 0.0;
    for &(n, y) in samples {
        let g = class.g(n);
        sg += g;
        sy += y;
        sgg += g * g;
        sgy += g * y;
    }
    let denom = m * sgg - sg * sg;
    let (a, c) = if denom.abs() < 1e-12 {
        // g is (numerically) constant: pure intercept fit.
        (sy / m, 0.0)
    } else {
        let c = (m * sgy - sg * sy) / denom;
        let a = (sy - c * sg) / m;
        (a, c)
    };
    if c < 0.0 {
        return (c, a, f64::INFINITY);
    }
    let mut sse = 0.0;
    for &(n, y) in samples {
        let e = y - (a + c * class.g(n));
        sse += e * e;
    }
    let mean_y = sy / m;
    let rmse = (sse / m).sqrt();
    let nrmse = if mean_y.abs() < f64::EPSILON {
        rmse
    } else {
        rmse / mean_y.abs()
    };
    (c, a, nrmse)
}

/// Log–log regression estimate of the exponent `α` in `y ≈ c · n^α`.
fn fit_exponent(samples: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = samples
        .iter()
        .filter(|&&(n, y)| n > 1.0 && y > 0.0)
        .map(|&(n, y)| (n.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return 0.0;
    }
    let m = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = m * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return 0.0;
    }
    (m * sxy - sx * sy) / denom
}

/// Fits a measured `(n, cost)` curve against every candidate class and
/// returns the ranking.
///
/// # Panics
///
/// Panics if fewer than two samples are supplied.
pub fn fit_complexity(samples: &[(f64, f64)]) -> FitResult {
    assert!(samples.len() >= 2, "need at least two (n, cost) samples");
    let alpha = fit_exponent(samples).clamp(0.0, 1.5);
    let mut candidates = vec![
        ComplexityClass::Constant,
        ComplexityClass::LogStar,
        ComplexityClass::LogLog,
        ComplexityClass::Log,
        ComplexityClass::LogSquared,
        ComplexityClass::NOverLog,
        ComplexityClass::Linear,
    ];
    // Only offer the fitted polynomial when it is meaningfully sublinear and
    // super-polylog; otherwise the named classes should win.
    if alpha > 0.05 && alpha < 0.95 {
        candidates.push(ComplexityClass::Poly { alpha });
    }
    let mut scored: Vec<(ComplexityClass, f64, f64, f64)> = candidates
        .into_iter()
        .map(|cl| {
            let (c, a, s) = score_class(samples, &cl);
            (cl, c, a, s)
        })
        .collect();
    // Stable sort with a small tolerance: when two classes explain the data
    // (almost) equally well, the simpler one (earlier in the candidate
    // list) wins.
    scored.sort_by(|a, b| {
        let (x, y) = (a.3, b.3);
        if (x - y).abs() <= 0.002 + 0.01 * x.min(y) {
            std::cmp::Ordering::Equal
        } else {
            x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal)
        }
    });
    let best = scored[0];
    FitResult {
        class: best.0,
        scale: best.1,
        intercept: best.2,
        score: best.3,
        candidates: scored.into_iter().map(|(cl, _, _, s)| (cl, s)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(f: impl Fn(f64) -> f64) -> Vec<(f64, f64)> {
        (8..=17)
            .map(|e| {
                let n = f64::from(1 << e);
                (n, f(n))
            })
            .collect()
    }

    #[test]
    fn fits_logarithmic_curves() {
        let r = fit_complexity(&sweep(|n| 3.0 * n.log2() + 2.0));
        assert_eq!(r.class, ComplexityClass::Log, "{r}");
    }

    #[test]
    fn fits_linear_curves() {
        let r = fit_complexity(&sweep(|n| 0.5 * n));
        assert_eq!(r.class, ComplexityClass::Linear, "{r}");
        assert!((r.scale - 0.5).abs() < 0.05);
        assert!(r.intercept.abs() < 10.0);
    }

    #[test]
    fn fits_affine_log_exactly() {
        // Distance curves are typically a·log n + b; the intercept must not
        // push the fit towards a small polynomial.
        let r = fit_complexity(&sweep(|n| 0.5 * n.log2() + 3.0));
        assert_eq!(r.class, ComplexityClass::Log, "{r}");
        assert!((r.scale - 0.5).abs() < 0.01);
        assert!((r.intercept - 3.0).abs() < 0.1);
    }

    #[test]
    fn fits_square_root_exponent() {
        let r = fit_complexity(&sweep(|n| 2.0 * n.sqrt()));
        match r.class {
            ComplexityClass::Poly { alpha } => {
                assert!((alpha - 0.5).abs() < 0.05, "alpha = {alpha}")
            }
            other => panic!("expected Θ(n^0.5), got {other}"),
        }
    }

    #[test]
    fn fits_cube_root_exponent() {
        let r = fit_complexity(&sweep(|n| 1.5 * n.powf(1.0 / 3.0)));
        match r.class {
            ComplexityClass::Poly { alpha } => {
                assert!((alpha - 1.0 / 3.0).abs() < 0.05, "alpha = {alpha}")
            }
            other => panic!("expected Θ(n^0.33), got {other}"),
        }
    }

    #[test]
    fn fits_constant_curves() {
        let r = fit_complexity(&sweep(|_| 7.0));
        assert_eq!(r.class, ComplexityClass::Constant);
        // For the constant class the level lives in the intercept.
        assert!((r.intercept + r.scale - 7.0).abs() < 1e-6, "{r}");
    }

    #[test]
    fn fits_n_over_log() {
        let r = fit_complexity(&sweep(|n| 2.0 * n / n.log2()));
        // n/log n and n^α with α slightly below 1 are close; accept either
        // but the exponent must be near 1.
        match r.class {
            ComplexityClass::NOverLog => {}
            ComplexityClass::Poly { alpha } => assert!(alpha > 0.75, "alpha = {alpha}"),
            ComplexityClass::Linear => {}
            other => panic!("unexpected class {other}"),
        }
    }

    #[test]
    fn noisy_log_still_wins() {
        let samples: Vec<(f64, f64)> = sweep(|n| 5.0 * n.log2())
            .into_iter()
            .enumerate()
            .map(|(i, (n, y))| (n, y * (1.0 + 0.02 * if i % 2 == 0 { 1.0 } else { -1.0 })))
            .collect();
        let r = fit_complexity(&samples);
        assert_eq!(r.class, ComplexityClass::Log, "{r}");
    }

    #[test]
    fn matches_compares_exponents() {
        let a = ComplexityClass::Poly { alpha: 0.52 };
        let b = ComplexityClass::Poly { alpha: 0.5 };
        assert!(a.matches(&b, 0.05));
        assert!(!a.matches(&b, 0.01));
        assert!(ComplexityClass::Log.matches(&ComplexityClass::Log, 0.0));
        assert!(!ComplexityClass::Log.matches(&ComplexityClass::Linear, 0.0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ComplexityClass::Log.to_string(), "Θ(log n)");
        assert_eq!(
            ComplexityClass::Poly { alpha: 0.333 }.to_string(),
            "Θ(n^0.33)"
        );
        let r = fit_complexity(&sweep(|n| n));
        assert!(r.to_string().contains("Θ(n)"));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn needs_two_samples() {
        let _ = fit_complexity(&[(8.0, 1.0)]);
    }

    #[test]
    fn families_partition_the_landscape() {
        use ClassFamily::*;
        assert_eq!(ComplexityClass::Constant.family(), Bounded);
        assert_eq!(ComplexityClass::LogStar.family(), Bounded);
        assert_eq!(ComplexityClass::LogLog.family(), Bounded);
        assert_eq!(ComplexityClass::Log.family(), Logarithmic);
        assert_eq!(ComplexityClass::LogSquared.family(), Logarithmic);
        assert_eq!(ComplexityClass::Poly { alpha: 0.5 }.family(), Polynomial);
        assert_eq!(ComplexityClass::Poly { alpha: 0.93 }.family(), NearLinear);
        assert_eq!(ComplexityClass::NOverLog.family(), NearLinear);
        assert_eq!(ComplexityClass::Linear.family(), NearLinear);
        assert_eq!(NearLinear.to_string(), "near-linear");
    }

    #[test]
    fn fitted_families_are_robust_to_class_ambiguity() {
        // A linear curve must land in the near-linear family even if the
        // class-level winner is n/log n or n^{0.96}.
        let r = fit_complexity(&sweep(|n| 0.8 * n + 40.0));
        assert_eq!(r.class.family(), ClassFamily::NearLinear, "{r}");
        let r = fit_complexity(&sweep(|n| 4.0 * n.log2() + 9.0));
        assert_eq!(r.class.family(), ClassFamily::Logarithmic, "{r}");
    }

    #[test]
    fn candidates_ranked_best_first() {
        let r = fit_complexity(&sweep(|n| n.log2()));
        // Ranking is by score up to the simplicity tie-break.
        for w in r.candidates.windows(2) {
            assert!(w[0].1 <= w[1].1 + 0.002 + 0.01 * w[0].1.min(w[1].1));
        }
        assert_eq!(r.candidates[0].0, r.class);
        assert!(r.candidates.last().unwrap().1 >= r.candidates[0].1);
    }
}
