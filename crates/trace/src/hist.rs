//! [`Log2Hist`]: the fixed-shape power-of-two histogram behind every
//! cost distribution in [`crate::SweepMetrics`].
//!
//! The related LCL landscape literature (and Table 1 of the source
//! paper) classifies problems by the *distribution* of per-start costs,
//! not just their maxima; log2 buckets capture those distributions at
//! every scale with a fixed, partition-independent shape. All state is
//! integral, so merging per-chunk partials in any grouping is
//! bit-identical to serial accumulation — the same argument that makes
//! `CostAccumulator` safe under the sharded engine.

/// Number of buckets: bucket 0 holds the value 0 and bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, so every `u64` lands in a bucket.
pub const BUCKETS: usize = 65;

/// A power-of-two histogram over `u64` observations with exact count,
/// sum and max side-channels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Hist {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of `value`: 0 for 0, otherwise `floor(log2) + 1`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            // vc-lint: allow(VC012, reason = "leading_zeros of a u64 is at most 64, far below any usize; this is an index computation, not a counter")
            64 - value.leading_zeros() as usize
        }
    }

    /// The half-open value range `[lo, hi)` covered by `bucket`
    /// (saturating at `u64::MAX` for the top bucket).
    pub fn bucket_range(bucket: usize) -> (u64, u64) {
        match bucket {
            0 => (0, 1),
            b if b >= 64 => (1 << 63, u64::MAX),
            b => (1 << (b - 1), 1 << b),
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Count in one bucket.
    pub fn bucket_count(&self, bucket: usize) -> u64 {
        self.counts.get(bucket).copied().unwrap_or(0)
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`): the exclusive
    /// upper edge of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`. Returns 0 for an empty histogram.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let clamped = q.clamp(0.0, 1.0);
        let target = (clamped * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The inclusive upper edge of bucket i.
                let (lo, hi) = Self::bucket_range(i);
                return if i == 0 { lo } else { hi - 1 };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 1);
        assert_eq!(Log2Hist::bucket_of(2), 2);
        assert_eq!(Log2Hist::bucket_of(3), 2);
        assert_eq!(Log2Hist::bucket_of(4), 3);
        assert_eq!(Log2Hist::bucket_of(1023), 10);
        assert_eq!(Log2Hist::bucket_of(1024), 11);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn ranges_cover_their_buckets() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40] {
            let b = Log2Hist::bucket_of(v);
            let (lo, hi) = Log2Hist::bucket_range(b);
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "value {v} bucket {b}"
            );
        }
    }

    #[test]
    fn observe_tracks_count_sum_max() {
        let mut h = Log2Hist::new();
        for v in [0u64, 1, 5, 5, 16] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 27);
        assert_eq!(h.max(), 16);
        assert!((h.mean() - 5.4).abs() < 1e-12);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(3), 2);
        assert_eq!(h.bucket_count(5), 1);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (3, 2), (5, 1)]);
    }

    #[test]
    fn merge_is_partition_independent() {
        let values: Vec<u64> = (0..97).map(|i| (i * i * 7 + i) % 5000).collect();
        let mut serial = Log2Hist::new();
        values.iter().for_each(|&v| serial.observe(v));
        for chunk in [1, 3, 10, 96, 97] {
            let mut parts: Vec<Log2Hist> = values
                .chunks(chunk)
                .map(|c| {
                    let mut h = Log2Hist::new();
                    c.iter().for_each(|&v| h.observe(v));
                    h
                })
                .collect();
            parts.reverse();
            let mut total = Log2Hist::new();
            for p in &parts {
                total.merge(p);
            }
            assert_eq!(total, serial, "chunk size {chunk}");
        }
    }

    #[test]
    fn quantiles_bound_from_above() {
        let mut h = Log2Hist::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        // The median of 1..=100 is ~50; its bucket [32, 64) upper edge is 63.
        assert_eq!(h.quantile_upper(0.5), 63);
        // The max lands in [64, 128).
        assert_eq!(h.quantile_upper(1.0), 127);
        assert_eq!(Log2Hist::new().quantile_upper(0.5), 0);
        let mut zeros = Log2Hist::new();
        zeros.observe(0);
        assert_eq!(zeros.quantile_upper(0.5), 0);
    }
}
