//! [`Stopwatch`]: the workspace's single sanctioned wall-clock access.
//!
//! Clock reads are syscalls; scattered `Instant::now()` calls are how
//! hot paths silently grow per-iteration overhead. The `no-hidden-clocks`
//! rule of `cargo run -p xtask -- lint` therefore forbids `Instant::now`
//! everywhere except this module — timing-consuming code (the engine's
//! per-sweep and per-chunk measurements) goes through `Stopwatch`, which
//! keeps every clock read greppable and reviewable in one place.

use std::time::{Duration, Instant};

/// A started monotonic stopwatch.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturated into `u64` (584 years of headroom).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
        assert!(sw.elapsed() >= Duration::ZERO);
    }
}
