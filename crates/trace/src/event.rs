//! The typed event stream of a traced execution.
//!
//! Events mirror the observable transitions of the §2.2 query model (a
//! query leaves the algorithm, a node joins `V_v`, the frontier deepens,
//! the answer is fixed) plus the scheduling transitions of the sharded
//! engine (a chunk of start nodes is claimed, timed and merged). They
//! carry only primitive data so the crate stays below `vc-model` in the
//! dependency graph.

use std::fmt;

/// One observable transition of a traced execution or sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The algorithm issued `query(from, port)` — counted whether or not
    /// the world answers it (budget refusals are part of the trace).
    QueryIssued {
        /// Query origin (world-internal node handle).
        from: usize,
        /// Queried port number (1-based, as in §2.1).
        port: u8,
    },
    /// A query admitted a previously unvisited node into `V_v`.
    NodeRevealed {
        /// The newly revealed node handle.
        node: usize,
        /// Its discovery depth (path-length distance bound).
        depth: u32,
    },
    /// The execution's maximum discovery depth increased — the exploration
    /// frontier moved strictly further from the initiating node.
    FrontierAdvanced {
        /// The new maximum depth.
        depth: u32,
    },
    /// The execution finished and its output was fixed (possibly the
    /// fallback output, when `completed` is false).
    AnswerFinalized {
        /// The initiating node.
        root: usize,
        /// Final `|V_v|` (volume, Definition 2.2).
        volume: usize,
        /// Final discovery-depth bound on the distance cost.
        distance_upper: u32,
        /// Queries issued over the whole execution.
        queries: u64,
        /// Whether the algorithm finished without a budget/oracle error.
        completed: bool,
    },
    /// The engine planned the sweep's chunk partition (once per sweep,
    /// before any chunk is merged). The plan is a pure function of the
    /// start count, so the payload is thread-count-invariant.
    ChunkPlanned {
        /// Total chunks covering the start set.
        chunks: usize,
        /// Start nodes per chunk (the final chunk may be shorter).
        chunk_size: usize,
    },
    /// The sweep was restricted to a slice of the planned chunks — the
    /// fleet-worker path. Emitted once per sweep, only under a chunk
    /// range; the payload mirrors the `lo..hi/total` range spec.
    PartitionRestricted {
        /// First chunk of the slice.
        lo: usize,
        /// Past-the-end chunk of the slice.
        hi: usize,
        /// Chunks in the full plan being sliced.
        total: usize,
    },
    /// An engine worker claimed a chunk of start nodes.
    ChunkClaimed {
        /// Chunk index in the fixed partition of the start set.
        chunk: usize,
        /// Number of start nodes in the chunk.
        starts: usize,
    },
    /// A worker finished a chunk and recorded its wall time. The only
    /// event whose payload varies between runs.
    ChunkTimed {
        /// Chunk index.
        chunk: usize,
        /// Wall-clock nanoseconds the chunk's executions took.
        nanos: u64,
    },
    /// The merge loop absorbed a chunk's partial results (always in chunk
    /// order — the determinism anchor).
    ChunkMerged {
        /// Chunk index.
        chunk: usize,
    },
    /// A chunk's executions panicked and the engine is re-running the
    /// chunk from a fresh scratch (bounded retry; see `vc-engine`).
    ChunkRetried {
        /// Chunk index.
        chunk: usize,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
    },
    /// A chunk panicked on every permitted attempt and was abandoned; its
    /// start nodes carry no outputs or records in the merged report.
    ChunkAborted {
        /// Chunk index.
        chunk: usize,
    },
    /// A fleet supervisor declared a worker dead: its partial checkpoint
    /// made no progress for a full liveness deadline (or its process
    /// exited). Emitted by `vc-fleet`, never by the engine itself.
    WorkerSuspected {
        /// Fleet worker index.
        worker: usize,
        /// Chunks the worker had completed when suspected.
        completed: usize,
        /// Chunks the worker was assigned.
        assigned: usize,
    },
    /// A fleet supervisor reassigned a dead worker's chunk to a new
    /// launch.
    ChunkReassigned {
        /// Chunk index in the sweep's fixed partition.
        chunk: usize,
        /// How many launches have now been asked to run this chunk.
        attempt: u32,
    },
    /// Partial checkpoints were merged into a resumable checkpoint
    /// (`splice_partial`), possibly with gaps left to reassign.
    PartialSplice {
        /// Chunks present in the merged checkpoint.
        merged: usize,
        /// Chunks still missing after the merge.
        missing: usize,
    },
    /// A sweep service scheduler admitted a cache-miss job into its run
    /// queue. Emitted by `vc-serve`, never by the engine itself.
    JobAdmitted {
        /// The service-assigned job id.
        job: u64,
        /// Jobs waiting in the queue after admission (the admitted job
        /// included).
        queue_depth: usize,
    },
    /// A submitted sweep spec resolved to an already-stored result in the
    /// service's content-addressed store — no execution scheduled.
    CacheHit {
        /// The service-assigned job id of the hit submission.
        job: u64,
    },
    /// A running batch job was preempted at a chunk boundary so a
    /// higher-priority job could take the worker pool; its checkpoint is
    /// parked for a later resume.
    JobPreempted {
        /// The preempted job's id.
        job: u64,
        /// Chunks the job had completed when it yielded.
        completed_chunks: usize,
    },
    /// A parked, previously preempted job re-entered execution from its
    /// checkpoint.
    JobResumed {
        /// The resumed job's id.
        job: u64,
        /// Chunks already complete at resume time.
        completed_chunks: usize,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::QueryIssued { from, port } => write!(f, "query({from}, {port})"),
            TraceEvent::NodeRevealed { node, depth } => {
                write!(f, "reveal node {node} at depth {depth}")
            }
            TraceEvent::FrontierAdvanced { depth } => write!(f, "frontier -> depth {depth}"),
            TraceEvent::AnswerFinalized {
                root,
                volume,
                distance_upper,
                queries,
                completed,
            } => write!(
                f,
                "finalize root {root}: volume {volume}, depth {distance_upper}, \
                 {queries} queries, {}",
                if *completed { "completed" } else { "truncated" }
            ),
            TraceEvent::ChunkPlanned { chunks, chunk_size } => {
                write!(f, "plan {chunks} chunks of {chunk_size} starts")
            }
            TraceEvent::PartitionRestricted { lo, hi, total } => {
                write!(f, "partition restricted to chunks {lo}..{hi}/{total}")
            }
            TraceEvent::ChunkClaimed { chunk, starts } => {
                write!(f, "claim chunk {chunk} ({starts} starts)")
            }
            TraceEvent::ChunkTimed { chunk, nanos } => {
                write!(f, "chunk {chunk} took {nanos} ns")
            }
            TraceEvent::ChunkMerged { chunk } => write!(f, "merge chunk {chunk}"),
            TraceEvent::ChunkRetried { chunk, attempt } => {
                write!(f, "retry chunk {chunk} (attempt {attempt})")
            }
            TraceEvent::ChunkAborted { chunk } => write!(f, "abort chunk {chunk}"),
            TraceEvent::WorkerSuspected {
                worker,
                completed,
                assigned,
            } => write!(
                f,
                "suspect worker {worker} dead ({completed}/{assigned} chunks done)"
            ),
            TraceEvent::ChunkReassigned { chunk, attempt } => {
                write!(f, "reassign chunk {chunk} (attempt {attempt})")
            }
            TraceEvent::PartialSplice { merged, missing } => {
                write!(
                    f,
                    "partial splice: {merged} chunks merged, {missing} missing"
                )
            }
            TraceEvent::JobAdmitted { job, queue_depth } => {
                write!(f, "admit job {job} (queue depth {queue_depth})")
            }
            TraceEvent::CacheHit { job } => write!(f, "cache hit for job {job}"),
            TraceEvent::JobPreempted {
                job,
                completed_chunks,
            } => write!(f, "preempt job {job} ({completed_chunks} chunks done)"),
            TraceEvent::JobResumed {
                job,
                completed_chunks,
            } => write!(f, "resume job {job} ({completed_chunks} chunks done)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_display() {
        let events = [
            TraceEvent::QueryIssued { from: 3, port: 1 },
            TraceEvent::NodeRevealed { node: 4, depth: 2 },
            TraceEvent::FrontierAdvanced { depth: 2 },
            TraceEvent::AnswerFinalized {
                root: 3,
                volume: 5,
                distance_upper: 2,
                queries: 7,
                completed: true,
            },
            TraceEvent::ChunkPlanned {
                chunks: 2,
                chunk_size: 64,
            },
            TraceEvent::PartitionRestricted {
                lo: 0,
                hi: 1,
                total: 2,
            },
            TraceEvent::ChunkClaimed {
                chunk: 0,
                starts: 64,
            },
            TraceEvent::ChunkTimed {
                chunk: 0,
                nanos: 12,
            },
            TraceEvent::ChunkMerged { chunk: 0 },
            TraceEvent::ChunkRetried {
                chunk: 0,
                attempt: 1,
            },
            TraceEvent::ChunkAborted { chunk: 0 },
            TraceEvent::WorkerSuspected {
                worker: 1,
                completed: 2,
                assigned: 3,
            },
            TraceEvent::ChunkReassigned {
                chunk: 2,
                attempt: 2,
            },
            TraceEvent::PartialSplice {
                merged: 5,
                missing: 1,
            },
            TraceEvent::JobAdmitted {
                job: 1,
                queue_depth: 2,
            },
            TraceEvent::CacheHit { job: 1 },
            TraceEvent::JobPreempted {
                job: 1,
                completed_chunks: 3,
            },
            TraceEvent::JobResumed {
                job: 1,
                completed_chunks: 3,
            },
        ];
        for e in events {
            assert!(!e.to_string().is_empty());
        }
    }
}
