//! # vc-trace
//!
//! The observability layer of the workspace: structured tracing of
//! query-model executions and mergeable sweep metrics, designed so that
//! **tracing can never perturb a measurement**.
//!
//! Two constraints shape the whole crate:
//!
//! 1. **Zero cost when disabled.** The [`Tracer`] trait has empty default
//!    hooks and the [`NoopTracer`] is a zero-sized type, so the untraced
//!    execution path (`vc-model`'s `run_from_with` instantiated with
//!    [`NoopTracer`]) monomorphizes every hook to nothing — the hot loop
//!    compiles to the same code it had before tracing existed.
//! 2. **Determinism under sharding.** The aggregating tracer
//!    ([`SweepMetrics`]) keeps purely integral state — counters and
//!    log2-bucketed histograms — and merges like `CostAccumulator` in
//!    `vc-model`: per-chunk partials absorbed in chunk order produce
//!    bit-identical totals for any worker-thread count. Wall-clock
//!    observations are quarantined in a separate [`metrics::SchedStats`]
//!    section that is *documented* to vary between runs and excluded from
//!    every determinism comparison.
//!
//! The crate is dependency-free (it sits below `vc-model` in the
//! workspace graph) and holds the only sanctioned wall-clock read in the
//! workspace: [`time::Stopwatch`] (enforced by the `no-hidden-clocks`
//! rule of `cargo run -p xtask -- lint`).
//!
//! Modules:
//!
//! * [`event`] — the typed [`event::TraceEvent`] stream a query-model
//!   execution can emit.
//! * [`tracer`] — the [`Tracer`] hook trait, the disabled [`NoopTracer`],
//!   the event-log [`RecordingTracer`] and the mergeable [`MergeTracer`]
//!   extension the sharded engine requires.
//! * [`hist`] — [`Log2Hist`], the fixed-shape power-of-two histogram
//!   behind every cost distribution.
//! * [`metrics`] — [`SweepMetrics`], the production tracer aggregating
//!   counters, histograms and chunk timings across a sweep.
//! * [`report`] — [`TraceReport`], the machine-readable
//!   `vc-trace-report/v1` JSON document emitted by `vc-bench`.
//! * [`time`] — [`time::Stopwatch`], the workspace's single wall-clock
//!   access point.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod hist;
pub mod metrics;
pub mod report;
pub mod time;
pub mod tracer;

pub use event::TraceEvent;
pub use hist::Log2Hist;
pub use metrics::{FleetStats, QueryStats, SchedStats, SweepMetrics};
pub use report::{CaseTrace, TraceReport, TRACE_REPORT_SCHEMA};
pub use tracer::{MergeTracer, NoopTracer, RecordingTracer, Tracer};
