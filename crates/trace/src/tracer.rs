//! The [`Tracer`] hook trait and its stock implementations.
//!
//! `vc-model` threads a `Tracer` through every execution and `vc-engine`
//! through every sweep chunk. All hooks have empty default bodies, so a
//! tracer implements only what it cares about — and the zero-sized
//! [`NoopTracer`] implements nothing at all, letting the untraced hot
//! path monomorphize every hook call away.

use crate::event::TraceEvent;

/// Receiver of the typed execution/sweep events of [`TraceEvent`].
///
/// Every hook defaults to a no-op; the compiler inlines empty bodies out
/// of the monomorphized execution loop, which is what makes tracing free
/// when disabled. Hooks take primitive arguments (rather than a
/// pre-built [`TraceEvent`]) so the disabled path never constructs an
/// event value either.
pub trait Tracer {
    /// The algorithm issued `query(from, port)` (answered or refused).
    #[inline]
    fn query_issued(&mut self, from: usize, port: u8) {
        let _ = (from, port);
    }

    /// A query admitted `node` into `V_v` at discovery depth `depth`.
    #[inline]
    fn node_revealed(&mut self, node: usize, depth: u32) {
        let _ = (node, depth);
    }

    /// The execution's maximum discovery depth increased to `depth`.
    #[inline]
    fn frontier_advanced(&mut self, depth: u32) {
        let _ = depth;
    }

    /// The execution rooted at `root` finished with the given final costs.
    #[inline]
    fn answer_finalized(
        &mut self,
        root: usize,
        volume: usize,
        distance_upper: u32,
        queries: u64,
        completed: bool,
    ) {
        let _ = (root, volume, distance_upper, queries, completed);
    }

    /// The engine planned the sweep's chunk partition: `chunks` chunks of
    /// (at most) `chunk_size` starts each. Emitted exactly once per sweep,
    /// on the merged tracer, and derived only from the start count — so
    /// like the other chunk events it is thread-count-invariant.
    #[inline]
    fn chunk_planned(&mut self, chunks: usize, chunk_size: usize) {
        let _ = (chunks, chunk_size);
    }

    /// The sweep was restricted to the chunk slice `lo..hi` of a full
    /// plan of `total` chunks (fleet execution). Emitted once per sweep
    /// on the merged tracer, right after [`Tracer::chunk_planned`], and
    /// only for range-restricted runs — an unpartitioned sweep emits
    /// nothing, so its metrics are unchanged by the fleet feature.
    #[inline]
    fn partition_restricted(&mut self, lo: usize, hi: usize, total: usize) {
        let _ = (lo, hi, total);
    }

    /// An engine worker claimed chunk `chunk` holding `starts` start nodes.
    #[inline]
    fn chunk_claimed(&mut self, chunk: usize, starts: usize) {
        let _ = (chunk, starts);
    }

    /// A worker finished chunk `chunk` in `nanos` wall-clock nanoseconds.
    #[inline]
    fn chunk_timed(&mut self, chunk: usize, nanos: u64) {
        let _ = (chunk, nanos);
    }

    /// The merge loop absorbed chunk `chunk` (invoked in chunk order).
    #[inline]
    fn chunk_merged(&mut self, chunk: usize) {
        let _ = chunk;
    }

    /// Chunk `chunk` panicked and is being re-run (`attempt` = 1 for the
    /// first retry). Retries are deterministic: a chunk that panics once
    /// panics on every run, so this hook fires thread-count-invariantly.
    #[inline]
    fn chunk_retried(&mut self, chunk: usize, attempt: u32) {
        let _ = (chunk, attempt);
    }

    /// Chunk `chunk` exhausted its retries and was abandoned; its starts
    /// carry no outputs/records in the merged report.
    #[inline]
    fn chunk_aborted(&mut self, chunk: usize) {
        let _ = chunk;
    }

    /// A fleet supervisor declared worker `worker` dead with
    /// `completed` of its `assigned` chunks done (no heartbeat progress
    /// within the liveness deadline, or a process exit). Emitted by
    /// `vc-fleet`, never by the engine.
    #[inline]
    fn worker_suspected(&mut self, worker: usize, completed: usize, assigned: usize) {
        let _ = (worker, completed, assigned);
    }

    /// A fleet supervisor reassigned chunk `chunk` to a new launch;
    /// `attempt` launches have now been asked to run it.
    #[inline]
    fn chunk_reassigned(&mut self, chunk: usize, attempt: u32) {
        let _ = (chunk, attempt);
    }

    /// Partial checkpoints were merged (`splice_partial`): `merged`
    /// chunks present, `missing` still absent.
    #[inline]
    fn partial_splice(&mut self, merged: usize, missing: usize) {
        let _ = (merged, missing);
    }

    /// A sweep service admitted cache-miss job `job` into its run queue,
    /// which now holds `queue_depth` waiting jobs. Emitted by
    /// `vc-serve`, never by the engine.
    #[inline]
    fn job_admitted(&mut self, job: u64, queue_depth: usize) {
        let _ = (job, queue_depth);
    }

    /// A submitted sweep resolved to a stored result: job `job` is a
    /// cache hit and schedules no execution.
    #[inline]
    fn cache_hit(&mut self, job: u64) {
        let _ = job;
    }

    /// Running job `job` was preempted at a chunk boundary with
    /// `completed_chunks` chunks done; its checkpoint is parked.
    #[inline]
    fn job_preempted(&mut self, job: u64, completed_chunks: usize) {
        let _ = (job, completed_chunks);
    }

    /// Parked job `job` resumed execution with `completed_chunks` chunks
    /// already complete.
    #[inline]
    fn job_resumed(&mut self, job: u64, completed_chunks: usize) {
        let _ = (job, completed_chunks);
    }
}

/// Forward hooks through mutable references, so a long-lived tracer can
/// be lent to each execution of a sweep (`run_from_traced` takes the
/// tracer by value; passing `&mut metrics` keeps ownership with the
/// sweep loop).
impl<T: Tracer + ?Sized> Tracer for &mut T {
    #[inline]
    fn query_issued(&mut self, from: usize, port: u8) {
        (**self).query_issued(from, port);
    }

    #[inline]
    fn node_revealed(&mut self, node: usize, depth: u32) {
        (**self).node_revealed(node, depth);
    }

    #[inline]
    fn frontier_advanced(&mut self, depth: u32) {
        (**self).frontier_advanced(depth);
    }

    #[inline]
    fn answer_finalized(
        &mut self,
        root: usize,
        volume: usize,
        distance_upper: u32,
        queries: u64,
        completed: bool,
    ) {
        (**self).answer_finalized(root, volume, distance_upper, queries, completed);
    }

    #[inline]
    fn chunk_planned(&mut self, chunks: usize, chunk_size: usize) {
        (**self).chunk_planned(chunks, chunk_size);
    }

    #[inline]
    fn partition_restricted(&mut self, lo: usize, hi: usize, total: usize) {
        (**self).partition_restricted(lo, hi, total);
    }

    #[inline]
    fn chunk_claimed(&mut self, chunk: usize, starts: usize) {
        (**self).chunk_claimed(chunk, starts);
    }

    #[inline]
    fn chunk_timed(&mut self, chunk: usize, nanos: u64) {
        (**self).chunk_timed(chunk, nanos);
    }

    #[inline]
    fn chunk_merged(&mut self, chunk: usize) {
        (**self).chunk_merged(chunk);
    }

    #[inline]
    fn chunk_retried(&mut self, chunk: usize, attempt: u32) {
        (**self).chunk_retried(chunk, attempt);
    }

    #[inline]
    fn chunk_aborted(&mut self, chunk: usize) {
        (**self).chunk_aborted(chunk);
    }

    #[inline]
    fn worker_suspected(&mut self, worker: usize, completed: usize, assigned: usize) {
        (**self).worker_suspected(worker, completed, assigned);
    }

    #[inline]
    fn chunk_reassigned(&mut self, chunk: usize, attempt: u32) {
        (**self).chunk_reassigned(chunk, attempt);
    }

    #[inline]
    fn partial_splice(&mut self, merged: usize, missing: usize) {
        (**self).partial_splice(merged, missing);
    }

    #[inline]
    fn job_admitted(&mut self, job: u64, queue_depth: usize) {
        (**self).job_admitted(job, queue_depth);
    }

    #[inline]
    fn cache_hit(&mut self, job: u64) {
        (**self).cache_hit(job);
    }

    #[inline]
    fn job_preempted(&mut self, job: u64, completed_chunks: usize) {
        (**self).job_preempted(job, completed_chunks);
    }

    #[inline]
    fn job_resumed(&mut self, job: u64, completed_chunks: usize) {
        (**self).job_resumed(job, completed_chunks);
    }
}

/// The disabled tracer: a zero-sized type whose hooks are all the empty
/// defaults. Instantiating the execution loop with `NoopTracer` produces
/// the same machine code as not tracing at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopTracer;

impl Tracer for NoopTracer {}

/// A tracer aggregated per chunk by the sharded engine and merged in
/// chunk order.
///
/// Implementations must make `absorb` order-compatible with serial
/// accumulation: folding events chunk by chunk and absorbing the chunk
/// partials in chunk index order must equal folding the whole sweep into
/// one tracer. Purely integral state (counters, histograms, integer
/// sums) satisfies this for free.
pub trait MergeTracer: Tracer + Default + Send {
    /// Whether the engine should wall-clock each chunk and call
    /// [`Tracer::chunk_timed`]. `false` for [`NoopTracer`] so the
    /// untraced sharded path performs no clock reads at all.
    const TIMED: bool = true;

    /// Folds another tracer's state (a later chunk's partial) into this
    /// one.
    fn absorb(&mut self, other: Self);
}

impl MergeTracer for NoopTracer {
    const TIMED: bool = false;

    #[inline]
    fn absorb(&mut self, _other: Self) {}
}

/// A tracer that records the full typed event log — the "per-problem
/// query trace" view used by `examples/trace_report.rs` and the audit
/// transparency tests.
///
/// Recording every event of a large sweep would allocate without bound,
/// so a capacity can be set: once `cap` events are stored, later events
/// are counted in [`RecordingTracer::dropped`] instead of stored.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecordingTracer {
    /// The recorded events, in emission order.
    pub events: Vec<TraceEvent>,
    /// Maximum number of events to store (`None` = unbounded).
    pub cap: Option<usize>,
    /// Events dropped after the capacity was reached.
    pub dropped: u64,
}

impl RecordingTracer {
    /// An unbounded recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder that stores at most `cap` events.
    pub fn with_capacity_limit(cap: usize) -> Self {
        Self {
            events: Vec::new(),
            cap: Some(cap),
            dropped: 0,
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if self.cap.is_some_and(|c| self.events.len() >= c) {
            self.dropped += 1;
        } else {
            self.events.push(event);
        }
    }
}

impl Tracer for RecordingTracer {
    fn query_issued(&mut self, from: usize, port: u8) {
        self.push(TraceEvent::QueryIssued { from, port });
    }

    fn node_revealed(&mut self, node: usize, depth: u32) {
        self.push(TraceEvent::NodeRevealed { node, depth });
    }

    fn frontier_advanced(&mut self, depth: u32) {
        self.push(TraceEvent::FrontierAdvanced { depth });
    }

    fn answer_finalized(
        &mut self,
        root: usize,
        volume: usize,
        distance_upper: u32,
        queries: u64,
        completed: bool,
    ) {
        self.push(TraceEvent::AnswerFinalized {
            root,
            volume,
            distance_upper,
            queries,
            completed,
        });
    }

    fn chunk_planned(&mut self, chunks: usize, chunk_size: usize) {
        self.push(TraceEvent::ChunkPlanned { chunks, chunk_size });
    }

    fn partition_restricted(&mut self, lo: usize, hi: usize, total: usize) {
        self.push(TraceEvent::PartitionRestricted { lo, hi, total });
    }

    fn chunk_claimed(&mut self, chunk: usize, starts: usize) {
        self.push(TraceEvent::ChunkClaimed { chunk, starts });
    }

    fn chunk_timed(&mut self, chunk: usize, nanos: u64) {
        self.push(TraceEvent::ChunkTimed { chunk, nanos });
    }

    fn chunk_merged(&mut self, chunk: usize) {
        self.push(TraceEvent::ChunkMerged { chunk });
    }

    fn chunk_retried(&mut self, chunk: usize, attempt: u32) {
        self.push(TraceEvent::ChunkRetried { chunk, attempt });
    }

    fn chunk_aborted(&mut self, chunk: usize) {
        self.push(TraceEvent::ChunkAborted { chunk });
    }

    fn worker_suspected(&mut self, worker: usize, completed: usize, assigned: usize) {
        self.push(TraceEvent::WorkerSuspected {
            worker,
            completed,
            assigned,
        });
    }

    fn chunk_reassigned(&mut self, chunk: usize, attempt: u32) {
        self.push(TraceEvent::ChunkReassigned { chunk, attempt });
    }

    fn partial_splice(&mut self, merged: usize, missing: usize) {
        self.push(TraceEvent::PartialSplice { merged, missing });
    }

    fn job_admitted(&mut self, job: u64, queue_depth: usize) {
        self.push(TraceEvent::JobAdmitted { job, queue_depth });
    }

    fn cache_hit(&mut self, job: u64) {
        self.push(TraceEvent::CacheHit { job });
    }

    fn job_preempted(&mut self, job: u64, completed_chunks: usize) {
        self.push(TraceEvent::JobPreempted {
            job,
            completed_chunks,
        });
    }

    fn job_resumed(&mut self, job: u64, completed_chunks: usize) {
        self.push(TraceEvent::JobResumed {
            job,
            completed_chunks,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoopTracer>(), 0);
    }

    #[test]
    fn recording_tracer_stores_events_in_order() {
        let mut t = RecordingTracer::new();
        t.query_issued(0, 1);
        t.node_revealed(1, 1);
        t.frontier_advanced(1);
        t.answer_finalized(0, 2, 1, 1, true);
        assert_eq!(
            t.events,
            vec![
                TraceEvent::QueryIssued { from: 0, port: 1 },
                TraceEvent::NodeRevealed { node: 1, depth: 1 },
                TraceEvent::FrontierAdvanced { depth: 1 },
                TraceEvent::AnswerFinalized {
                    root: 0,
                    volume: 2,
                    distance_upper: 1,
                    queries: 1,
                    completed: true,
                },
            ]
        );
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn recording_tracer_caps_and_counts_drops() {
        let mut t = RecordingTracer::with_capacity_limit(2);
        for i in 0..5 {
            t.query_issued(i, 1);
        }
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.dropped, 3);
    }

    #[test]
    fn mut_reference_forwards_all_hooks() {
        // Drive through a generic bound so the `&mut T` forwarding impl
        // (the one sweep loops rely on) is the impl actually exercised.
        fn drive<T: Tracer>(mut t: T) {
            t.query_issued(1, 2);
            t.node_revealed(2, 1);
            t.frontier_advanced(1);
            t.answer_finalized(1, 2, 1, 1, false);
            t.chunk_planned(2, 64);
            t.partition_restricted(0, 1, 2);
            t.chunk_claimed(0, 64);
            t.chunk_timed(0, 99);
            t.chunk_merged(0);
            t.chunk_retried(1, 1);
            t.chunk_aborted(1);
            t.worker_suspected(0, 1, 2);
            t.chunk_reassigned(1, 2);
            t.partial_splice(1, 1);
            t.job_admitted(1, 1);
            t.cache_hit(1);
            t.job_preempted(1, 3);
            t.job_resumed(1, 3);
        }
        let mut inner = RecordingTracer::new();
        drive(&mut inner);
        assert_eq!(inner.events.len(), 18);
    }
}
