//! [`SweepMetrics`]: the production tracer — counters, log2 histograms
//! and chunk timings aggregated over a whole sweep.
//!
//! The struct is split along the determinism boundary:
//!
//! * [`QueryStats`] holds everything derived from the *query stream* —
//!   counters and [`Log2Hist`]s of volume / distance / queries-per-start.
//!   All state is integral, so per-chunk partials absorbed in chunk order
//!   are bit-identical to a serial fold for **any worker-thread count**
//!   (the determinism suite asserts this directly).
//! * [`SchedStats`] holds the *scheduling* observations — wall time per
//!   chunk and how chunks landed on claims — which legitimately vary
//!   between runs and are therefore excluded from every determinism
//!   comparison.

use crate::hist::Log2Hist;
use crate::tracer::{MergeTracer, Tracer};

/// Deterministic sweep totals: identical for every thread count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Executions finalized (equals the cost summary's `runs`).
    pub executions: u64,
    /// Executions truncated by a budget/oracle error.
    pub truncated: u64,
    /// Queries issued, including ones the world refused.
    pub queries_issued: u64,
    /// Nodes admitted into some `V_v` across all executions.
    pub nodes_revealed: u64,
    /// Strict frontier advances (depth records) across all executions.
    pub frontier_advances: u64,
    /// Chunk plans announced (one per sweep; sums across absorbed sweeps).
    pub chunks_planned: u64,
    /// Planned starts-per-chunk (the adaptive chunk size; max across
    /// absorbed sweeps). Derived from the start count alone, so it is
    /// thread-invariant like every other field here.
    pub planned_chunk_size: u64,
    /// Partition restrictions announced (one per range-restricted sweep;
    /// 0 for unpartitioned sweeps). Absorbing every partition's metrics
    /// of an N-way fleet run sums this to N.
    pub partitions: u64,
    /// Chunks inside the announced partition slices (sums `hi - lo`
    /// across absorbed partitions; a full fleet's partitions sum to the
    /// planned chunk count).
    pub partition_chunks: u64,
    /// Chunks claimed by workers (= the planned chunk count of the sweep).
    pub chunks_claimed: u64,
    /// Chunks absorbed by the merge loop (= `chunks_claimed` minus any
    /// aborted chunks).
    pub chunks_merged: u64,
    /// Chunk retries after a panic. Deterministic: a panicking chunk
    /// panics identically on every run, so retries are thread-invariant.
    pub chunks_retried: u64,
    /// Chunks abandoned after exhausting their retries.
    pub chunks_aborted: u64,
    /// Distribution of per-execution volume `|V_v|`.
    pub volume: Log2Hist,
    /// Distribution of per-execution discovery-depth (distance bound).
    pub distance: Log2Hist,
    /// Distribution of queries issued per execution.
    pub queries_per_start: Log2Hist,
    /// Distribution of start nodes per claimed chunk (every chunk is the
    /// planned size except possibly the final remainder).
    pub chunk_starts: Log2Hist,
}

impl QueryStats {
    fn absorb(&mut self, other: &QueryStats) {
        self.executions += other.executions;
        self.truncated += other.truncated;
        self.queries_issued += other.queries_issued;
        self.nodes_revealed += other.nodes_revealed;
        self.frontier_advances += other.frontier_advances;
        self.chunks_planned += other.chunks_planned;
        self.planned_chunk_size = self.planned_chunk_size.max(other.planned_chunk_size);
        self.partitions += other.partitions;
        self.partition_chunks += other.partition_chunks;
        self.chunks_claimed += other.chunks_claimed;
        self.chunks_merged += other.chunks_merged;
        self.chunks_retried += other.chunks_retried;
        self.chunks_aborted += other.chunks_aborted;
        self.volume.merge(&other.volume);
        self.distance.merge(&other.distance);
        self.queries_per_start.merge(&other.queries_per_start);
        self.chunk_starts.merge(&other.chunk_starts);
    }
}

/// Fleet-supervision observations: suspicions, reassignments and partial
/// splices as emitted by `vc-fleet`. Like [`SchedStats`] these **vary
/// between runs** — *when* a worker is suspected depends on wall-clock
/// deadlines — so they are excluded from every determinism comparison;
/// what they must account for is every injected death and every
/// reassignment of a drill (the `FleetReport` invariant).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Workers declared dead by a supervisor.
    pub workers_suspected: u64,
    /// Chunk reassignments issued to recovery launches.
    pub chunks_reassigned: u64,
    /// Partial-splice merges performed.
    pub partial_splices: u64,
    /// Chunks still missing across those merges (sums each merge's gap).
    pub missing_chunks: u64,
}

impl FleetStats {
    fn absorb(&mut self, other: &FleetStats) {
        self.workers_suspected += other.workers_suspected;
        self.chunks_reassigned += other.chunks_reassigned;
        self.partial_splices += other.partial_splices;
        self.missing_chunks += other.missing_chunks;
    }
}

/// Wall-clock / scheduling observations. **Varies between runs** — never
/// compare these in a determinism test.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Chunks that reported a wall time.
    pub chunks_timed: u64,
    /// Total wall-clock nanoseconds summed over chunks (CPU-seconds-ish:
    /// overlapping chunks on different workers both count in full).
    pub chunk_nanos_total: u128,
    /// Slowest single chunk in nanoseconds.
    pub chunk_nanos_max: u64,
}

impl SchedStats {
    fn absorb(&mut self, other: &SchedStats) {
        self.chunks_timed += other.chunks_timed;
        self.chunk_nanos_total += other.chunk_nanos_total;
        self.chunk_nanos_max = self.chunk_nanos_max.max(other.chunk_nanos_max);
    }
}

/// The aggregating tracer used by production sweeps: one per chunk in
/// the sharded engine, merged in chunk order into the sweep total.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepMetrics {
    /// Deterministic query-stream totals.
    pub query: QueryStats,
    /// Run-varying scheduling observations.
    pub sched: SchedStats,
    /// Run-varying fleet-supervision observations.
    pub fleet: FleetStats,
}

impl SweepMetrics {
    /// A fresh, empty metrics sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Tracer for SweepMetrics {
    #[inline]
    fn query_issued(&mut self, _from: usize, _port: u8) {
        self.query.queries_issued += 1;
    }

    #[inline]
    fn node_revealed(&mut self, _node: usize, _depth: u32) {
        self.query.nodes_revealed += 1;
    }

    #[inline]
    fn frontier_advanced(&mut self, _depth: u32) {
        self.query.frontier_advances += 1;
    }

    #[inline]
    fn answer_finalized(
        &mut self,
        _root: usize,
        volume: usize,
        distance_upper: u32,
        queries: u64,
        completed: bool,
    ) {
        self.query.executions += 1;
        if !completed {
            self.query.truncated += 1;
        }
        self.query.volume.observe(volume as u64);
        self.query.distance.observe(u64::from(distance_upper));
        self.query.queries_per_start.observe(queries);
    }

    #[inline]
    fn chunk_planned(&mut self, _chunks: usize, chunk_size: usize) {
        self.query.chunks_planned += 1;
        self.query.planned_chunk_size = self.query.planned_chunk_size.max(chunk_size as u64);
    }

    #[inline]
    fn partition_restricted(&mut self, lo: usize, hi: usize, _total: usize) {
        self.query.partitions += 1;
        self.query.partition_chunks += (hi - lo) as u64;
    }

    #[inline]
    fn chunk_claimed(&mut self, _chunk: usize, starts: usize) {
        self.query.chunks_claimed += 1;
        self.query.chunk_starts.observe(starts as u64);
    }

    #[inline]
    fn chunk_timed(&mut self, _chunk: usize, nanos: u64) {
        self.sched.chunks_timed += 1;
        self.sched.chunk_nanos_total += u128::from(nanos);
        self.sched.chunk_nanos_max = self.sched.chunk_nanos_max.max(nanos);
    }

    #[inline]
    fn chunk_merged(&mut self, _chunk: usize) {
        self.query.chunks_merged += 1;
    }

    #[inline]
    fn chunk_retried(&mut self, _chunk: usize, _attempt: u32) {
        self.query.chunks_retried += 1;
    }

    #[inline]
    fn chunk_aborted(&mut self, _chunk: usize) {
        self.query.chunks_aborted += 1;
    }

    #[inline]
    fn worker_suspected(&mut self, _worker: usize, _completed: usize, _assigned: usize) {
        self.fleet.workers_suspected += 1;
    }

    #[inline]
    fn chunk_reassigned(&mut self, _chunk: usize, _attempt: u32) {
        self.fleet.chunks_reassigned += 1;
    }

    #[inline]
    fn partial_splice(&mut self, _merged: usize, missing: usize) {
        self.fleet.partial_splices += 1;
        self.fleet.missing_chunks += missing as u64;
    }
}

impl MergeTracer for SweepMetrics {
    fn absorb(&mut self, other: Self) {
        self.query.absorb(&other.query);
        self.sched.absorb(&other.sched);
        self.fleet.absorb(&other.fleet);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events(m: &mut SweepMetrics, executions: u64) {
        for e in 0..executions {
            m.query_issued(0, 1);
            m.node_revealed(1, 1);
            m.frontier_advanced(1);
            m.answer_finalized(0, 2 + e as usize, 1, 1 + e, e % 3 == 0);
        }
    }

    #[test]
    fn counters_follow_the_event_stream() {
        let mut m = SweepMetrics::new();
        sample_events(&mut m, 6);
        assert_eq!(m.query.executions, 6);
        assert_eq!(m.query.truncated, 4); // e % 3 != 0 for e in {1,2,4,5}
        assert_eq!(m.query.queries_issued, 6);
        assert_eq!(m.query.nodes_revealed, 6);
        assert_eq!(m.query.frontier_advances, 6);
        assert_eq!(m.query.volume.count(), 6);
        assert_eq!(m.query.volume.max(), 7);
        assert_eq!(m.query.queries_per_start.max(), 6);
    }

    #[test]
    fn absorb_is_partition_independent() {
        let mut serial = SweepMetrics::new();
        sample_events(&mut serial, 20);
        serial.chunk_claimed(0, 64);
        serial.chunk_merged(0);

        let mut a = SweepMetrics::new();
        sample_events(&mut a, 13);
        a.chunk_claimed(0, 64);
        a.chunk_merged(0);
        let mut b = SweepMetrics::new();
        // The same tail: events 13..20 of the serial stream.
        for e in 13..20u64 {
            b.query_issued(0, 1);
            b.node_revealed(1, 1);
            b.frontier_advanced(1);
            b.answer_finalized(0, 2 + e as usize, 1, 1 + e, e % 3 == 0);
        }
        a.absorb(b);
        assert_eq!(a.query, serial.query);
    }

    #[test]
    fn chunk_plan_observability_is_recorded() {
        let mut m = SweepMetrics::new();
        m.chunk_planned(3, 128);
        m.chunk_claimed(0, 128);
        m.chunk_claimed(1, 128);
        m.chunk_claimed(2, 40);
        assert_eq!(m.query.chunks_planned, 1);
        assert_eq!(m.query.planned_chunk_size, 128);
        assert_eq!(m.query.chunks_claimed, 3);
        assert_eq!(m.query.chunk_starts.count(), 3);
        assert_eq!(m.query.chunk_starts.max(), 128);
        assert_eq!(m.query.chunk_starts.sum(), 296);
        // Absorbing another sweep's metrics sums the plan count but keeps
        // the largest planned size.
        let mut other = SweepMetrics::new();
        other.chunk_planned(10, 64);
        m.absorb(other);
        assert_eq!(m.query.chunks_planned, 2);
        assert_eq!(m.query.planned_chunk_size, 128);
    }

    #[test]
    fn partition_metrics_absorb_across_partitions() {
        // Three fleet partitions of one 10-chunk sweep: absorbed, their
        // slices account for every planned chunk exactly once.
        let mut merged = SweepMetrics::new();
        for (lo, hi) in [(0, 4), (4, 7), (7, 10)] {
            let mut part = SweepMetrics::new();
            part.chunk_planned(10, 64);
            part.partition_restricted(lo, hi, 10);
            merged.absorb(part);
        }
        assert_eq!(merged.query.partitions, 3);
        assert_eq!(merged.query.partition_chunks, 10);
        // An unpartitioned sweep announces nothing.
        let mut solo = SweepMetrics::new();
        solo.chunk_planned(10, 64);
        assert_eq!(solo.query.partitions, 0);
        assert_eq!(solo.query.partition_chunks, 0);
    }

    #[test]
    fn fleet_stats_count_supervision_events() {
        let mut m = SweepMetrics::new();
        m.worker_suspected(1, 2, 4);
        m.chunk_reassigned(2, 2);
        m.chunk_reassigned(3, 2);
        m.partial_splice(4, 2);
        assert_eq!(m.fleet.workers_suspected, 1);
        assert_eq!(m.fleet.chunks_reassigned, 2);
        assert_eq!(m.fleet.partial_splices, 1);
        assert_eq!(m.fleet.missing_chunks, 2);
        // Fleet counters absorb like the other sections — and never touch
        // the deterministic query section.
        let mut other = SweepMetrics::new();
        other.worker_suspected(0, 0, 3);
        other.partial_splice(6, 0);
        m.absorb(other);
        assert_eq!(m.fleet.workers_suspected, 2);
        assert_eq!(m.fleet.partial_splices, 2);
        assert_eq!(m.fleet.missing_chunks, 2);
        assert_eq!(m.query, QueryStats::default());
    }

    #[test]
    fn sched_stats_aggregate_timings() {
        let mut m = SweepMetrics::new();
        m.chunk_timed(0, 100);
        m.chunk_timed(1, 300);
        let mut other = SweepMetrics::new();
        other.chunk_timed(2, 200);
        m.absorb(other);
        assert_eq!(m.sched.chunks_timed, 3);
        assert_eq!(m.sched.chunk_nanos_total, 600);
        assert_eq!(m.sched.chunk_nanos_max, 300);
    }
}
