//! [`TraceReport`]: the machine-readable sweep report
//! (`vc-trace-report/v1`).
//!
//! `vc-bench` turns each traced sweep into a [`CaseTrace`] and a set of
//! cases into a [`TraceReport`], whose [`TraceReport::to_json`] output is
//! what `examples/trace_report.rs` writes and `cargo run -p xtask --
//! check-json` validates in CI. The JSON is emitted by hand because the
//! workspace builds offline against a no-op serde stand-in; only the
//! types below need encoding.
//!
//! Schema stability contract: fields may be *added* under the `/v1`
//! schema name; renaming or removing any existing field requires bumping
//! to `/v2` (downstream dashboards key on these names).

use crate::hist::Log2Hist;
use crate::metrics::SweepMetrics;
use std::fmt::Write as _;

/// Schema identifier written into every report.
pub const TRACE_REPORT_SCHEMA: &str = "vc-trace-report/v1";

/// One traced sweep: a named case plus its merged metrics and
/// engine-level throughput.
#[derive(Clone, Debug)]
pub struct CaseTrace {
    /// Case name (e.g. `leaf-coloring/rw`).
    pub case: String,
    /// Instance size.
    pub n: usize,
    /// Content-addressed instance identity (hex `InstanceId` from
    /// `vc-ident`, carried here as a string to keep this crate
    /// dependency-free). Pins the case to the exact `(G, L)` it measured.
    pub instance_id: String,
    /// Content-addressed sweep identity (hex `SweepId`): instance,
    /// algorithm, configuration, start set and chunk size.
    pub sweep_id: String,
    /// Worker threads the engine actually used.
    pub threads: usize,
    /// Wall-clock nanoseconds of the whole sweep.
    pub elapsed_nanos: u64,
    /// Executions per wall-clock second.
    pub starts_per_sec: f64,
    /// Oracle queries per wall-clock second.
    pub queries_per_sec: f64,
    /// The merged sweep metrics.
    pub metrics: SweepMetrics,
}

/// A set of traced sweeps, serializable as one `vc-trace-report/v1`
/// JSON document.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// The traced cases, in emission order.
    pub cases: Vec<CaseTrace>,
}

fn push_hist(out: &mut String, name: &str, h: &Log2Hist) {
    let _ = write!(
        out,
        "\"{name}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}, \
         \"p50_upper\": {}, \"p99_upper\": {}, \"buckets\": [",
        h.count(),
        h.sum(),
        h.max(),
        h.mean(),
        h.quantile_upper(0.5),
        h.quantile_upper(0.99),
    );
    for (i, (bucket, count)) in h.nonzero_buckets().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{bucket}, {count}]");
    }
    out.push_str("]}");
}

impl TraceReport {
    /// A report over the given cases.
    pub fn new(cases: Vec<CaseTrace>) -> Self {
        Self { cases }
    }

    /// Serializes the report as a `vc-trace-report/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": \"{TRACE_REPORT_SCHEMA}\",\n  \"cases\": [\n"
        );
        for (i, c) in self.cases.iter().enumerate() {
            let q = &c.metrics.query;
            let s = &c.metrics.sched;
            out.push_str("    {");
            let _ = write!(
                out,
                "\"case\": \"{}\", \"n\": {}, \"instance_id\": \"{}\", \"sweep_id\": \"{}\", \
                 \"threads\": {}, \"elapsed_nanos\": {}, \
                 \"starts_per_sec\": {:.1}, \"queries_per_sec\": {:.1}, ",
                c.case,
                c.n,
                c.instance_id,
                c.sweep_id,
                c.threads,
                c.elapsed_nanos,
                c.starts_per_sec,
                c.queries_per_sec
            );
            let _ = write!(
                out,
                "\"executions\": {}, \"truncated\": {}, \"queries_issued\": {}, \
                 \"nodes_revealed\": {}, \"frontier_advances\": {}, \
                 \"chunks_planned\": {}, \"planned_chunk_size\": {}, \
                 \"chunks_claimed\": {}, \"chunks_merged\": {}, \
                 \"chunks_retried\": {}, \"chunks_aborted\": {}, ",
                q.executions,
                q.truncated,
                q.queries_issued,
                q.nodes_revealed,
                q.frontier_advances,
                q.chunks_planned,
                q.planned_chunk_size,
                q.chunks_claimed,
                q.chunks_merged,
                q.chunks_retried,
                q.chunks_aborted
            );
            push_hist(&mut out, "volume", &q.volume);
            out.push_str(", ");
            push_hist(&mut out, "distance", &q.distance);
            out.push_str(", ");
            push_hist(&mut out, "queries_per_start", &q.queries_per_start);
            out.push_str(", ");
            push_hist(&mut out, "chunk_starts", &q.chunk_starts);
            let _ = write!(
                out,
                ", \"sched\": {{\"chunks_timed\": {}, \"chunk_nanos_total\": {}, \
                 \"chunk_nanos_max\": {}}}",
                s.chunks_timed, s.chunk_nanos_total, s.chunk_nanos_max
            );
            out.push('}');
            out.push_str(if i + 1 < self.cases.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn sample_case() -> CaseTrace {
        let mut metrics = SweepMetrics::new();
        metrics.chunk_planned(1, 64);
        metrics.chunk_claimed(0, 2);
        metrics.query_issued(0, 1);
        metrics.node_revealed(1, 1);
        metrics.frontier_advanced(1);
        metrics.answer_finalized(0, 2, 1, 1, true);
        metrics.answer_finalized(1, 1, 0, 0, false);
        metrics.chunk_timed(0, 1234);
        metrics.chunk_merged(0);
        CaseTrace {
            case: "toy/case".to_string(),
            n: 2,
            instance_id: "00000000deadbeef".to_string(),
            sweep_id: "0000000001234567".to_string(),
            threads: 1,
            elapsed_nanos: 5678,
            starts_per_sec: 123.4,
            queries_per_sec: 567.8,
            metrics,
        }
    }

    #[test]
    fn report_json_has_schema_and_fields() {
        let json = TraceReport::new(vec![sample_case()]).to_json();
        assert!(json.contains("\"schema\": \"vc-trace-report/v1\""));
        assert!(json.contains("\"case\": \"toy/case\""));
        assert!(json.contains("\"instance_id\": \"00000000deadbeef\""));
        assert!(json.contains("\"sweep_id\": \"0000000001234567\""));
        assert!(json.contains("\"executions\": 2"));
        assert!(json.contains("\"truncated\": 1"));
        assert!(json.contains("\"buckets\": "));
        assert!(json.contains("\"chunks_planned\": 1"));
        assert!(json.contains("\"planned_chunk_size\": 64"));
        assert!(json.contains("\"chunk_starts\": "));
        assert!(json.contains("\"chunk_nanos_max\": 1234"));
    }

    #[test]
    fn report_json_is_structurally_balanced() {
        // The real validation runs in CI via `xtask check-json`; here we
        // sanity-check nesting balance and the empty-report shape.
        for report in [
            TraceReport::default(),
            TraceReport::new(vec![sample_case()]),
        ] {
            let json = report.to_json();
            let opens = json.matches('{').count();
            let closes = json.matches('}').count();
            assert_eq!(opens, closes);
            let b_open = json.matches('[').count();
            let b_close = json.matches(']').count();
            assert_eq!(b_open, b_close);
            assert!(json.ends_with("}\n"));
        }
    }
}
