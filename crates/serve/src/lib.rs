//! `vc-serve`: a content-addressed sweep service.
//!
//! The bench and audit pipelines resubmit the same sweeps constantly —
//! every CI run, every parameter-sweep retry, every fleet splice check
//! re-executes work whose result is a pure function of the sweep's
//! content identity. This crate turns that identity into a service
//! boundary:
//!
//! * **Memoization** — every submission resolves to a
//!   [`vc_engine::SweepId`] via [`vc_engine::sweep_identity`]. Finished
//!   results live in a content-addressed on-disk store
//!   (`vc-serve-result/v1`, [`store::ResultStore`]) keyed by that id,
//!   with identity-checked loads in the same discipline as the
//!   `vc-instance/v1` graph store: the filename id, the embedded id and
//!   a payload digest must all agree before a byte is trusted.
//! * **One shared pool** — cache-miss jobs run on a single
//!   [`vc_engine::Engine`] worker pool behind a deterministic
//!   FIFO-with-priority queue ([`SweepService`]), instead of one engine
//!   per caller.
//! * **Checkpoint preemption** — a long batch sweep yields at a chunk
//!   boundary when an interactive job arrives: the service trips the
//!   run's [`vc_engine::CancelFlag`], the engine writes the partial
//!   checkpoint exactly as a crashed run would, and the job is parked
//!   and later resumed from that checkpoint. The engine's existing
//!   kill-and-resume invariant makes the final checkpoint byte-identical
//!   to an uninterrupted run at any thread count.
//!
//! A dependency-free line-delimited JSON protocol over a local Unix
//! socket ([`server`]) exposes submit / poll / result / stats /
//! shutdown, and [`SweepService::report_json`] emits a
//! `vc-serve-report/v1` stats document (hits, misses, evictions,
//! preemptions, queue depths). Scheduling transitions are published as
//! [`vc_trace::TraceEvent`]s (`JobAdmitted`, `CacheHit`, `JobPreempted`,
//! `JobResumed`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod scheduler;
pub mod server;
pub mod spec;
pub mod store;

pub use scheduler::{
    JobState, JobStatus, ServeConfig, ServeError, ServeStats, Submission, SweepService,
    REPORT_SCHEMA,
};
pub use server::{request, ServeDaemon};
pub use spec::{AlgorithmRef, InstanceRef, Priority, SpecError, StartsRef, SweepSpec};
pub use store::{ResultStore, StoreError, RESULT_SCHEMA};
