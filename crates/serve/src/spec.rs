//! Sweep specifications: the unit a client submits.
//!
//! A [`SweepSpec`] names an instance by *generator reference* (the
//! service rebuilds the instance and derives its content identity — a
//! wrong reference cannot alias a cached result, because the
//! [`vc_engine::SweepId`] digests the rebuilt instance's full content),
//! an algorithm from a small closed registry ([`AlgorithmRef`]), and the
//! run configuration fields that [`vc_model::run::RunConfig`] folds into
//! the sweep identity. [`Priority`] is deliberately *excluded* from the
//! identity: the same sweep submitted interactively must hit the cache
//! entry a batch run produced.

use std::fmt;
use std::path::Path;

use vc_engine::{sweep_identity, CheckpointReport, Engine, EngineError, SweepIdentity};
use vc_graph::{gen, Instance};
use vc_json::Value;
use vc_model::run::RunConfig;
use vc_model::run::StartSelection;
use vc_model::{Budget, RandomTape};

/// A generator reference resolving to one labeled instance.
///
/// References are *recipes*, not identities: the service rebuilds the
/// instance and lets the content digest speak. Two distinct recipes that
/// build the same labeled graph share a cache entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceRef {
    /// [`gen::random_full_binary_tree`] — `n` target nodes, seeded.
    FullBinaryTree {
        /// Target node count (rounded to a full binary tree size).
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// [`gen::pseudo_tree`] — a cycle with hanging trees.
    PseudoTree {
        /// Target node count.
        n: usize,
        /// Cycle length.
        cycle: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl InstanceRef {
    /// Builds the referenced instance.
    pub fn build(&self) -> Instance {
        match *self {
            InstanceRef::FullBinaryTree { n, seed } => gen::random_full_binary_tree(n, seed),
            InstanceRef::PseudoTree { n, cycle, seed } => gen::pseudo_tree(n, cycle, seed),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            InstanceRef::FullBinaryTree { .. } => "full-binary-tree",
            InstanceRef::PseudoTree { .. } => "pseudo-tree",
        }
    }
}

/// One algorithm from the service's closed registry.
///
/// The enum erases the solver's output type: everything the service
/// needs — identity folding and checkpointed execution — goes through
/// the engine's type-erased checkpoint path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmRef {
    /// `leaf-coloring/distance`: the deterministic distance solver.
    LeafDistance,
    /// `leaf-coloring/rw-to-leaf`: the randomized walk with the given
    /// step factor (the registry default is the solver default).
    LeafRandomWalk {
        /// Walk step budget factor (see `RwToLeaf`).
        step_factor: u32,
    },
}

impl AlgorithmRef {
    /// The registry name (`"leaf-coloring/distance"` etc.).
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmRef::LeafDistance => "leaf-coloring/distance",
            AlgorithmRef::LeafRandomWalk { .. } => "leaf-coloring/rw-to-leaf",
        }
    }

    /// Computes the sweep identity this algorithm yields on `inst` with
    /// `config` and the resolved `starts`.
    pub fn identity(&self, inst: &Instance, config: &RunConfig, starts: &[usize]) -> SweepIdentity {
        match *self {
            AlgorithmRef::LeafDistance => sweep_identity(
                inst,
                &vc_core::problems::leaf_coloring::DistanceSolver,
                config,
                starts,
            ),
            AlgorithmRef::LeafRandomWalk { step_factor } => sweep_identity(
                inst,
                &vc_core::problems::leaf_coloring::RwToLeaf { step_factor },
                config,
                starts,
            ),
        }
    }

    /// Runs the sweep through the engine's checkpoint path.
    pub fn run_checkpointed(
        &self,
        engine: &Engine,
        inst: &Instance,
        config: &RunConfig,
        path: &Path,
    ) -> Result<CheckpointReport, EngineError> {
        match *self {
            AlgorithmRef::LeafDistance => engine.run_recorded_with_checkpoint(
                inst,
                &vc_core::problems::leaf_coloring::DistanceSolver,
                config,
                path,
            ),
            AlgorithmRef::LeafRandomWalk { step_factor } => engine.run_recorded_with_checkpoint(
                inst,
                &vc_core::problems::leaf_coloring::RwToLeaf { step_factor },
                config,
                path,
            ),
        }
    }
}

/// Start-set selection, mirrored from [`StartSelection`] for the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartsRef {
    /// Every node starts an execution.
    All,
    /// A seeded sample of `count` start nodes.
    Sample {
        /// Sample size.
        count: usize,
        /// Sample seed.
        seed: u64,
    },
}

/// Scheduling priority. Not part of the sweep identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Default: runs in submission order behind other batch jobs.
    Batch,
    /// Jumps the queue and preempts a running batch job at the next
    /// chunk boundary.
    Interactive,
}

/// One submittable sweep: instance recipe, algorithm, run configuration
/// and scheduling priority.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepSpec {
    /// Instance recipe.
    pub instance: InstanceRef,
    /// Algorithm registry entry.
    pub algorithm: AlgorithmRef,
    /// Private randomness tape seed (`None` = deterministic run).
    pub tape_seed: Option<u64>,
    /// Volume budget.
    pub max_volume: Option<usize>,
    /// Distance budget.
    pub max_distance: Option<u32>,
    /// Query budget.
    pub max_queries: Option<u64>,
    /// Whether executions compute the exact distance cost.
    pub exact_distance: bool,
    /// Start-set selection.
    pub starts: StartsRef,
    /// Scheduling priority (excluded from the sweep identity).
    pub priority: Priority,
}

impl SweepSpec {
    /// A batch-priority spec with the default run configuration.
    pub fn new(instance: InstanceRef, algorithm: AlgorithmRef) -> Self {
        let defaults = RunConfig::default();
        Self {
            instance,
            algorithm,
            tape_seed: None,
            max_volume: None,
            max_distance: None,
            max_queries: None,
            exact_distance: defaults.exact_distance,
            starts: StartsRef::All,
            priority: Priority::Batch,
        }
    }

    /// The [`RunConfig`] this spec denotes.
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            tape: self.tape_seed.map(RandomTape::private),
            budget: Budget {
                max_volume: self.max_volume,
                max_distance: self.max_distance,
                max_queries: self.max_queries,
            },
            starts: match self.starts {
                StartsRef::All => StartSelection::All,
                StartsRef::Sample { count, seed } => StartSelection::Sample { count, seed },
            },
            exact_distance: self.exact_distance,
        }
    }

    /// Encodes the spec as one line of JSON (the wire form).
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"instance\":{{\"kind\":\"{}\"",
            self.instance.kind()
        );
        match self.instance {
            InstanceRef::FullBinaryTree { n, seed } => {
                let _ = write!(out, ",\"n\":{n},\"seed\":{seed}}}");
            }
            InstanceRef::PseudoTree { n, cycle, seed } => {
                let _ = write!(out, ",\"n\":{n},\"cycle\":{cycle},\"seed\":{seed}}}");
            }
        }
        let _ = write!(
            out,
            ",\"algorithm\":{{\"name\":\"{}\"",
            self.algorithm.name()
        );
        if let AlgorithmRef::LeafRandomWalk { step_factor } = self.algorithm {
            let _ = write!(out, ",\"step_factor\":{step_factor}");
        }
        out.push('}');
        if let Some(seed) = self.tape_seed {
            let _ = write!(out, ",\"tape_seed\":{seed}");
        }
        if let Some(v) = self.max_volume {
            let _ = write!(out, ",\"max_volume\":{v}");
        }
        if let Some(d) = self.max_distance {
            let _ = write!(out, ",\"max_distance\":{d}");
        }
        if let Some(q) = self.max_queries {
            let _ = write!(out, ",\"max_queries\":{q}");
        }
        let _ = write!(out, ",\"exact_distance\":{}", self.exact_distance);
        match self.starts {
            StartsRef::All => out.push_str(",\"starts\":\"all\""),
            StartsRef::Sample { count, seed } => {
                let _ = write!(out, ",\"starts\":{{\"count\":{count},\"seed\":{seed}}}");
            }
        }
        let _ = write!(
            out,
            ",\"priority\":\"{}\"}}",
            match self.priority {
                Priority::Batch => "batch",
                Priority::Interactive => "interactive",
            }
        );
        out
    }

    /// Decodes a spec from its parsed wire form.
    pub fn from_json(v: &Value) -> Result<Self, SpecError> {
        let malformed = |what: &str| SpecError::Malformed(what.to_string());
        let inst = v.get("instance").ok_or_else(|| malformed("instance"))?;
        let kind = inst
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| malformed("instance.kind"))?;
        let num = |obj: &Value, key: &str| -> Result<u64, SpecError> {
            obj.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| SpecError::Malformed(key.to_string()))
        };
        let instance = match kind {
            "full-binary-tree" => InstanceRef::FullBinaryTree {
                n: usize::try_from(num(inst, "n")?).map_err(|_| malformed("instance.n"))?,
                seed: num(inst, "seed")?,
            },
            "pseudo-tree" => InstanceRef::PseudoTree {
                n: usize::try_from(num(inst, "n")?).map_err(|_| malformed("instance.n"))?,
                cycle: usize::try_from(num(inst, "cycle")?)
                    .map_err(|_| malformed("instance.cycle"))?,
                seed: num(inst, "seed")?,
            },
            other => return Err(SpecError::UnknownInstance(other.to_string())),
        };
        let algo = v.get("algorithm").ok_or_else(|| malformed("algorithm"))?;
        let name = algo
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| malformed("algorithm.name"))?;
        let algorithm = match name {
            "leaf-coloring/distance" => AlgorithmRef::LeafDistance,
            "leaf-coloring/rw-to-leaf" => {
                let default_factor =
                    u64::from(vc_core::problems::leaf_coloring::RwToLeaf::default().step_factor);
                let step_factor = match algo.get("step_factor") {
                    Some(sf) => sf
                        .as_u64()
                        .ok_or_else(|| malformed("algorithm.step_factor"))?,
                    None => default_factor,
                };
                AlgorithmRef::LeafRandomWalk {
                    step_factor: u32::try_from(step_factor)
                        .map_err(|_| malformed("algorithm.step_factor"))?,
                }
            }
            other => return Err(SpecError::UnknownAlgorithm(other.to_string())),
        };
        let opt_num = |key: &str| -> Result<Option<u64>, SpecError> {
            match v.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(n) => n
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| SpecError::Malformed(key.to_string())),
            }
        };
        let starts = match v.get("starts") {
            None => StartsRef::All,
            Some(Value::Str(s)) if s == "all" => StartsRef::All,
            Some(sample @ Value::Obj(_)) => StartsRef::Sample {
                count: usize::try_from(num(sample, "count")?)
                    .map_err(|_| malformed("starts.count"))?,
                seed: num(sample, "seed")?,
            },
            Some(_) => return Err(malformed("starts")),
        };
        let priority = match v.get("priority").and_then(Value::as_str) {
            None | Some("batch") => Priority::Batch,
            Some("interactive") => Priority::Interactive,
            Some(_) => return Err(malformed("priority")),
        };
        Ok(Self {
            instance,
            algorithm,
            tape_seed: opt_num("tape_seed")?,
            max_volume: opt_num("max_volume")?
                .map(usize::try_from)
                .transpose()
                .map_err(|_| malformed("max_volume"))?,
            max_distance: opt_num("max_distance")?
                .map(u32::try_from)
                .transpose()
                .map_err(|_| malformed("max_distance"))?,
            max_queries: opt_num("max_queries")?,
            exact_distance: match v.get("exact_distance") {
                None => RunConfig::default().exact_distance,
                Some(b) => b.as_bool().ok_or_else(|| malformed("exact_distance"))?,
            },
            starts,
            priority,
        })
    }
}

/// Why a wire spec could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// A required field is missing or has the wrong shape.
    Malformed(String),
    /// The algorithm name is not in the registry.
    UnknownAlgorithm(String),
    /// The instance kind is not in the registry.
    UnknownInstance(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Malformed(what) => write!(f, "malformed spec field: {what}"),
            SpecError::UnknownAlgorithm(name) => write!(f, "unknown algorithm: {name}"),
            SpecError::UnknownInstance(kind) => write!(f, "unknown instance kind: {kind}"),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> SweepSpec {
        SweepSpec {
            tape_seed: Some(11),
            max_volume: Some(500),
            starts: StartsRef::Sample { count: 64, seed: 9 },
            priority: Priority::Interactive,
            ..SweepSpec::new(
                InstanceRef::FullBinaryTree { n: 255, seed: 3 },
                AlgorithmRef::LeafRandomWalk { step_factor: 16 },
            )
        }
    }

    #[test]
    fn wire_form_round_trips() {
        for spec in [
            sample_spec(),
            SweepSpec::new(
                InstanceRef::PseudoTree {
                    n: 100,
                    cycle: 8,
                    seed: 1,
                },
                AlgorithmRef::LeafDistance,
            ),
        ] {
            let line = spec.to_json_line();
            let parsed = vc_json::parse(&line).expect("wire form parses");
            assert_eq!(SweepSpec::from_json(&parsed), Ok(spec));
        }
    }

    #[test]
    fn priority_is_not_part_of_the_identity() {
        let batch = SweepSpec::new(
            InstanceRef::FullBinaryTree { n: 63, seed: 5 },
            AlgorithmRef::LeafDistance,
        );
        let interactive = SweepSpec {
            priority: Priority::Interactive,
            ..batch
        };
        let inst = batch.instance.build();
        let starts: Vec<usize> = (0..inst.n()).collect();
        let a = batch
            .algorithm
            .identity(&inst, &batch.run_config(), &starts);
        let b = interactive
            .algorithm
            .identity(&inst, &interactive.run_config(), &starts);
        assert_eq!(a.sweep_id, b.sweep_id);
    }

    #[test]
    fn registry_rejects_unknown_names() {
        let line = sample_spec()
            .to_json_line()
            .replace("leaf-coloring/rw-to-leaf", "no-such-algo");
        let parsed = vc_json::parse(&line).expect("still valid json");
        assert_eq!(
            SweepSpec::from_json(&parsed),
            Err(SpecError::UnknownAlgorithm("no-such-algo".to_string()))
        );
        let line = sample_spec()
            .to_json_line()
            .replace("full-binary-tree", "no-such-kind");
        let parsed = vc_json::parse(&line).expect("still valid json");
        assert_eq!(
            SweepSpec::from_json(&parsed),
            Err(SpecError::UnknownInstance("no-such-kind".to_string()))
        );
    }

    #[test]
    fn missing_defaults_fill_in() {
        let parsed = vc_json::parse(
            "{\"instance\":{\"kind\":\"full-binary-tree\",\"n\":31,\"seed\":1},\
             \"algorithm\":{\"name\":\"leaf-coloring/distance\"}}",
        )
        .expect("minimal spec parses");
        let spec = SweepSpec::from_json(&parsed).expect("decodes");
        assert_eq!(spec.priority, Priority::Batch);
        assert_eq!(spec.starts, StartsRef::All);
        assert_eq!(spec.exact_distance, RunConfig::default().exact_distance);
        assert_eq!(spec.tape_seed, None);
    }
}
