//! The wire protocol: line-delimited JSON over a local Unix socket.
//!
//! One request per line, one response line per request, dependency-free
//! on both sides (the vc-json codec is the whole stack). Requests:
//!
//! ```text
//! {"op":"submit","spec":{...}}   -> {"ok":true,"job":N,"sweep_id":"..","cache_hit":b,"deduped":b}
//! {"op":"poll","job":N}          -> {"ok":true,"job":N,"state":"..","preemptions":..,
//!                                    "completed_chunks":..,"num_chunks":..}
//! {"op":"result","job":N}        -> {"ok":true,"payload":".."}
//! {"op":"stats"}                 -> {"ok":true,"report":{..vc-serve-report/v1..}}
//! {"op":"shutdown"}              -> {"ok":true}   (stops the listener, not the service)
//! ```
//!
//! Every failure is `{"ok":false,"error":".."}`; the connection stays
//! usable. Connections are handled serially — the protocol is a local
//! control plane, not a throughput path.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use vc_json::Value;

use crate::scheduler::SweepService;
use crate::spec::SweepSpec;

/// A running protocol listener bound to a socket path.
pub struct ServeDaemon {
    handle: Option<std::thread::JoinHandle<()>>,
    socket: PathBuf,
}

impl ServeDaemon {
    /// Binds `socket` (unlinking any stale file) and serves `service`
    /// on a background thread until a `shutdown` op arrives.
    pub fn bind(service: Arc<SweepService>, socket: &Path) -> std::io::Result<Self> {
        if socket.exists() {
            std::fs::remove_file(socket)?;
        }
        if let Some(parent) = socket.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let listener = UnixListener::bind(socket)?;
        let handle = std::thread::spawn(move || accept_loop(&listener, &service));
        Ok(Self {
            handle: Some(handle),
            socket: socket.to_path_buf(),
        })
    }

    /// The socket path the daemon is bound to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Waits for the listener to stop (after a `shutdown` op) and
    /// removes the socket file.
    pub fn join(mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for ServeDaemon {
    fn drop(&mut self) {
        // A dropped-without-join daemon leaves the listener thread
        // blocked in accept; poke it so the thread can observe the
        // closed-world shutdown path on its own socket.
        if let Some(handle) = self.handle.take() {
            if let Ok(mut conn) = UnixStream::connect(&self.socket) {
                let _ = conn.write_all(b"{\"op\":\"shutdown\"}\n");
            }
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// One-shot client helper: connects to `socket`, sends `line`, returns
/// the single response line. Used by the drill and by scripts.
pub fn request(socket: &Path, line: &str) -> std::io::Result<String> {
    let mut conn = UnixStream::connect(socket)?;
    conn.write_all(line.as_bytes())?;
    conn.write_all(b"\n")?;
    conn.shutdown(std::net::Shutdown::Write)?;
    let mut reader = BufReader::new(conn);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    while response.ends_with('\n') || response.ends_with('\r') {
        response.pop();
    }
    Ok(response)
}

fn accept_loop(listener: &UnixListener, service: &SweepService) {
    for conn in listener.incoming() {
        let Ok(conn) = conn else {
            return;
        };
        if handle_connection(conn, service) {
            return;
        }
    }
}

/// Serves one connection to EOF; returns true when a shutdown op was
/// processed (the accept loop then exits).
fn handle_connection(conn: UnixStream, service: &SweepService) -> bool {
    let Ok(write_half) = conn.try_clone() else {
        return false;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let reader = BufReader::new(conn);
    let mut saw_shutdown = false;
    for line in reader.lines() {
        let Ok(line) = line else {
            break;
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, is_shutdown) = respond(&line, service);
        saw_shutdown |= is_shutdown;
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
        if is_shutdown {
            break;
        }
    }
    saw_shutdown
}

fn error_line(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", vc_json::escape(msg))
}

/// Computes the response line for one request line; the bool marks a
/// shutdown request.
fn respond(line: &str, service: &SweepService) -> (String, bool) {
    let req = match vc_json::parse(line) {
        Ok(req) => req,
        Err(e) => return (error_line(&format!("bad request: {e}")), false),
    };
    let Some(op) = req.get("op").and_then(Value::as_str) else {
        return (error_line("missing op"), false);
    };
    let job_arg = || -> Result<u64, String> {
        req.get("job")
            .and_then(Value::as_u64)
            .ok_or_else(|| "missing job".to_string())
    };
    match op {
        "submit" => {
            let Some(spec_value) = req.get("spec") else {
                return (error_line("missing spec"), false);
            };
            let spec = match SweepSpec::from_json(spec_value) {
                Ok(spec) => spec,
                Err(e) => return (error_line(&e.to_string()), false),
            };
            match service.submit(&spec) {
                Ok(sub) => (
                    format!(
                        "{{\"ok\":true,\"job\":{},\"sweep_id\":\"{}\",\
                         \"cache_hit\":{},\"deduped\":{}}}",
                        sub.job, sub.sweep_id, sub.cache_hit, sub.deduped
                    ),
                    false,
                ),
                Err(e) => (error_line(&e.to_string()), false),
            }
        }
        "poll" => {
            let job = match job_arg() {
                Ok(job) => job,
                Err(msg) => return (error_line(&msg), false),
            };
            match service.status(job) {
                Ok(s) => (
                    format!(
                        "{{\"ok\":true,\"job\":{},\"state\":\"{}\",\"preemptions\":{},\
                         \"completed_chunks\":{},\"num_chunks\":{}}}",
                        s.job,
                        s.state.name(),
                        s.preemptions,
                        s.completed_chunks,
                        s.num_chunks
                    ),
                    false,
                ),
                Err(e) => (error_line(&e.to_string()), false),
            }
        }
        "result" => {
            let job = match job_arg() {
                Ok(job) => job,
                Err(msg) => return (error_line(&msg), false),
            };
            match service.result(job) {
                Ok(payload) => (
                    format!(
                        "{{\"ok\":true,\"payload\":\"{}\"}}",
                        vc_json::escape(&payload)
                    ),
                    false,
                ),
                Err(e) => (error_line(&e.to_string()), false),
            }
        }
        "stats" => (
            format!("{{\"ok\":true,\"report\":{}}}", service.report_json()),
            false,
        ),
        "shutdown" => ("{\"ok\":true}".to_string(), true),
        other => (error_line(&format!("unknown op: {other}")), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServeConfig;
    use crate::spec::{AlgorithmRef, InstanceRef};

    #[test]
    fn protocol_round_trip_over_the_socket() {
        let root = std::env::temp_dir().join(format!("vc-serve-sock-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let service = Arc::new(
            SweepService::start(&ServeConfig {
                threads: 2,
                store_dir: root.join("store"),
                spool_dir: root.join("spool"),
                max_store_entries: None,
            })
            .expect("start"),
        );
        let socket = root.join("serve.sock");
        let daemon = ServeDaemon::bind(Arc::clone(&service), &socket).expect("bind");

        let spec = SweepSpec::new(
            InstanceRef::FullBinaryTree { n: 255, seed: 4 },
            AlgorithmRef::LeafDistance,
        );
        let line = format!("{{\"op\":\"submit\",\"spec\":{}}}", spec.to_json_line());
        let response = request(&socket, &line).expect("submit");
        let doc = vc_json::parse(&response).expect("response parses");
        assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true));
        let job = doc.get("job").and_then(Value::as_u64).expect("job id");

        // Poll until done, over fresh connections each time (results
        // arrive via the service's own condvar, not protocol polling).
        service
            .wait_job(job, std::time::Duration::from_secs(120), |s| {
                matches!(
                    s.state,
                    crate::scheduler::JobState::Done { .. } | crate::scheduler::JobState::Failed
                )
            })
            .expect("job finishes");
        let response =
            request(&socket, &format!("{{\"op\":\"poll\",\"job\":{job}}}")).expect("poll");
        let doc = vc_json::parse(&response).expect("poll parses");
        assert_eq!(doc.get("state").and_then(Value::as_str), Some("done"));

        let response =
            request(&socket, &format!("{{\"op\":\"result\",\"job\":{job}}}")).expect("result");
        let doc = vc_json::parse(&response).expect("result parses");
        let payload = doc.get("payload").and_then(Value::as_str).expect("payload");
        assert!(vc_json::validate(payload).is_ok());

        let response = request(&socket, "{\"op\":\"stats\"}").expect("stats");
        let doc = vc_json::parse(&response).expect("stats parses");
        assert_eq!(
            doc.get("report")
                .and_then(|r| r.get("schema"))
                .and_then(Value::as_str),
            Some(crate::scheduler::REPORT_SCHEMA)
        );

        let response = request(&socket, "{\"op\":\"nope\"}").expect("unknown op answered");
        let doc = vc_json::parse(&response).expect("error parses");
        assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(false));

        let response = request(&socket, "{\"op\":\"shutdown\"}").expect("shutdown");
        assert_eq!(response, "{\"ok\":true}");
        daemon.join();
        let _ = std::fs::remove_dir_all(&root);
    }
}
