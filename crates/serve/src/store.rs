//! The content-addressed result store (`vc-serve-result/v1`).
//!
//! One finished sweep = one file named `<sweep_id>.json` holding the
//! sweep's final checkpoint document as an escaped payload, wrapped with
//! enough identity to refuse every corruption the instance store
//! (`vc-instance/v1`) refuses:
//!
//! * the **filename** id must equal the **embedded** `sweep_id` field —
//!   a renamed or cross-linked file is an [`StoreError::IdentityMismatch`],
//! * a `payload_hash` digest (an [`IdHasher`] fold over the payload
//!   text, domain [`RESULT_SCHEMA`]) must recompute — a flipped byte
//!   inside an otherwise well-formed document is a
//!   [`StoreError::DigestMismatch`],
//! * truncations and stray bytes fail JSON parsing —
//!   [`StoreError::Malformed`].
//!
//! Hashes are emitted as hex *strings*: the vc-json number type is an
//! `f64`, which cannot carry a full 64-bit digest.
//!
//! Eviction is FIFO over insertion order with an optional entry cap;
//! evictions are counted for the `vc-serve-report/v1` document.

use std::collections::VecDeque;
use std::fmt;
use std::path::{Path, PathBuf};

use vc_engine::{SweepId, SweepIdentity};
use vc_ident::IdHasher;
use vc_json::Value;

/// Schema tag of one stored result document.
pub const RESULT_SCHEMA: &str = "vc-serve-result/v1";

/// Why a store operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem failure (message carries the OS error).
    Io(String),
    /// The document is not a well-formed `vc-serve-result/v1` file —
    /// truncated, not JSON, wrong schema tag or missing fields.
    Malformed(String),
    /// No entry under the requested id.
    NotFound(SweepId),
    /// The embedded `sweep_id` disagrees with the id the entry was
    /// addressed by (renamed or cross-linked file).
    IdentityMismatch {
        /// The id the caller asked for (and the filename encodes).
        requested: SweepId,
        /// The id the document claims.
        stored: SweepId,
    },
    /// The payload digest does not recompute — the payload bytes were
    /// altered after the document was written.
    DigestMismatch {
        /// Digest recorded in the document.
        stored: u64,
        /// Digest of the payload as read.
        computed: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "result store I/O failed: {msg}"),
            StoreError::Malformed(msg) => write!(f, "malformed result document: {msg}"),
            StoreError::NotFound(id) => write!(f, "no stored result for sweep {id}"),
            StoreError::IdentityMismatch { requested, stored } => write!(
                f,
                "result identity mismatch: requested sweep {requested}, document claims {stored}"
            ),
            StoreError::DigestMismatch { stored, computed } => write!(
                f,
                "result payload digest mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

fn payload_digest(payload: &str) -> u64 {
    let mut h = IdHasher::new(RESULT_SCHEMA);
    h.text(payload);
    h.finish()
}

fn parse_hex_u64(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// The content-addressed on-disk result store.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    cap: Option<usize>,
    /// Insertion order, oldest first — the FIFO eviction queue.
    order: VecDeque<SweepId>,
    evictions: u64,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir` with an
    /// optional entry cap. Pre-existing entries are adopted in id order
    /// (insertion order is not persisted across restarts).
    pub fn open(dir: &Path, cap: Option<usize>) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::Io(e.to_string()))?;
        let mut ids = Vec::new();
        let entries = std::fs::read_dir(dir).map_err(|e| StoreError::Io(e.to_string()))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::Io(e.to_string()))?;
            let name = entry.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".json")) else {
                continue;
            };
            if let Some(id) = SweepId::parse_hex(stem) {
                ids.push(id);
            }
        }
        ids.sort();
        Ok(Self {
            dir: dir.to_path_buf(),
            cap,
            order: ids.into(),
            evictions: 0,
        })
    }

    fn entry_path(&self, id: SweepId) -> PathBuf {
        self.dir.join(format!("{id}.json"))
    }

    /// Whether an entry for `id` exists.
    pub fn contains(&self, id: SweepId) -> bool {
        self.order.contains(&id)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Entries evicted since the store was opened.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Stores `payload` (a checkpoint document) under `identity`,
    /// evicting oldest-first past the cap. Re-storing an existing id
    /// rewrites the entry in place without touching the FIFO order.
    pub fn store(&mut self, identity: &SweepIdentity, payload: &str) -> Result<(), StoreError> {
        let mut doc = String::with_capacity(payload.len() + 160);
        doc.push_str("{\n");
        doc.push_str(&format!("  \"schema\": \"{RESULT_SCHEMA}\",\n"));
        doc.push_str(&format!("  \"sweep_id\": \"{}\",\n", identity.sweep_id));
        doc.push_str(&format!(
            "  \"instance_id\": \"{}\",\n",
            identity.instance_id
        ));
        doc.push_str(&format!(
            "  \"payload_hash\": \"{:016x}\",\n",
            payload_digest(payload)
        ));
        doc.push_str(&format!(
            "  \"payload\": \"{}\"\n",
            vc_json::escape(payload)
        ));
        doc.push_str("}\n");
        std::fs::write(self.entry_path(identity.sweep_id), doc)
            .map_err(|e| StoreError::Io(e.to_string()))?;
        if !self.order.contains(&identity.sweep_id) {
            self.order.push_back(identity.sweep_id);
        }
        while self.cap.is_some_and(|cap| self.order.len() > cap) {
            if let Some(oldest) = self.order.pop_front() {
                let _ = std::fs::remove_file(self.entry_path(oldest));
                self.evictions += 1;
            }
        }
        Ok(())
    }

    /// Loads the payload stored under `id`, verifying the embedded
    /// identity and the payload digest before returning a byte.
    pub fn load(&self, id: SweepId) -> Result<String, StoreError> {
        let path = self.entry_path(id);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotFound(id))
            }
            Err(e) => return Err(StoreError::Io(e.to_string())),
        };
        let doc = vc_json::parse(&text).map_err(StoreError::Malformed)?;
        let field = |key: &str| -> Result<&str, StoreError> {
            doc.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| StoreError::Malformed(format!("missing field: {key}")))
        };
        if field("schema")? != RESULT_SCHEMA {
            return Err(StoreError::Malformed(format!(
                "wrong schema tag (want {RESULT_SCHEMA})"
            )));
        }
        let stored_id = SweepId::parse_hex(field("sweep_id")?)
            .ok_or_else(|| StoreError::Malformed("unparsable sweep_id".to_string()))?;
        if stored_id != id {
            return Err(StoreError::IdentityMismatch {
                requested: id,
                stored: stored_id,
            });
        }
        let stored_hash = parse_hex_u64(field("payload_hash")?)
            .ok_or_else(|| StoreError::Malformed("unparsable payload_hash".to_string()))?;
        let payload = field("payload")?.to_string();
        let computed = payload_digest(&payload);
        if stored_hash != computed {
            return Err(StoreError::DigestMismatch {
                stored: stored_hash,
                computed,
            });
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_engine::InstanceId;

    fn ident(raw: u64) -> SweepIdentity {
        SweepIdentity {
            instance_id: InstanceId::from_raw(raw ^ 0xabcd),
            sweep_id: SweepId::from_raw(raw),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vc-serve-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_and_reopen() {
        let dir = temp_dir("rt");
        let mut store = ResultStore::open(&dir, None).expect("open");
        let id = ident(7);
        store.store(&id, "{\"k\": [1, 2]}").expect("store");
        assert!(store.contains(id.sweep_id));
        assert_eq!(store.load(id.sweep_id).expect("load"), "{\"k\": [1, 2]}");
        let reopened = ResultStore::open(&dir, None).expect("reopen");
        assert_eq!(reopened.len(), 1);
        assert!(reopened.contains(id.sweep_id));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fifo_eviction_is_counted() {
        let dir = temp_dir("evict");
        let mut store = ResultStore::open(&dir, Some(2)).expect("open");
        for raw in 1..=4u64 {
            store.store(&ident(raw), "payload").expect("store");
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 2);
        assert!(!store.contains(SweepId::from_raw(1)));
        assert!(!store.contains(SweepId::from_raw(2)));
        assert!(store.contains(SweepId::from_raw(4)));
        assert_eq!(
            store.load(SweepId::from_raw(1)),
            Err(StoreError::NotFound(SweepId::from_raw(1)))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_of_existing_id_keeps_one_entry() {
        let dir = temp_dir("dup");
        let mut store = ResultStore::open(&dir, Some(8)).expect("open");
        store.store(&ident(3), "first").expect("store");
        store.store(&ident(3), "second").expect("restore");
        assert_eq!(store.len(), 1);
        assert_eq!(store.load(SweepId::from_raw(3)).expect("load"), "second");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
