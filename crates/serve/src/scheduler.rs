//! The sweep service: one shared worker pool, a deterministic
//! FIFO-with-priority queue, SweepId dedup and checkpoint preemption.
//!
//! ## Scheduling discipline
//!
//! A single scheduler thread owns the engine. It always runs the
//! highest-priority queued job, breaking ties by admission order
//! (job ids are monotonic). When an [`Priority::Interactive`] job is
//! admitted while a [`Priority::Batch`] job runs, the service trips the
//! running job's [`CancelFlag`]; the engine stops claiming chunks and
//! writes its partial checkpoint — the *parked* state. The preempted job
//! re-enters the queue and resumes from that checkpoint after the
//! interactive work drains. Because the checkpoint path is the engine's
//! ordinary kill-and-resume path, the final checkpoint of a preempted
//! job is byte-identical to an uninterrupted run at any thread count.
//!
//! ## Dedup
//!
//! Submission resolves the spec to a [`SweepId`] first. A stored result
//! is a cache hit (no execution, `CacheHit` trace event); an in-flight
//! job with the same id is returned as-is (same job id, no second
//! execution); only genuinely new work is admitted (`JobAdmitted`).

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use vc_engine::{CancelFlag, Engine, SweepId, SweepIdentity};
use vc_graph::Instance;
use vc_model::run::{RunConfig, StartError};
use vc_trace::{RecordingTracer, TraceEvent, Tracer};

use crate::spec::{Priority, SpecError, SweepSpec};
use crate::store::{ResultStore, StoreError};

/// Schema tag of the service stats document.
pub const REPORT_SCHEMA: &str = "vc-serve-report/v1";

/// Cap on retained trace events (oldest kept; beyond this the recorder
/// counts drops instead of growing).
const TRACE_CAP: usize = 65_536;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Engine worker threads for the shared pool.
    pub threads: usize,
    /// Directory of the content-addressed result store.
    pub store_dir: PathBuf,
    /// Directory for in-flight (and parked) sweep checkpoints.
    pub spool_dir: PathBuf,
    /// Optional result-store entry cap (FIFO eviction past it).
    pub max_store_entries: Option<usize>,
}

/// Lifecycle of one submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the run queue.
    Queued,
    /// Executing on the shared pool.
    Running,
    /// Preempted at a chunk boundary; checkpoint parked, re-queued.
    Parked,
    /// Finished; result available from the store.
    Done {
        /// Whether the submission was answered from the store without
        /// any execution.
        cache_hit: bool,
    },
    /// Execution failed; see [`JobStatus::error`].
    Failed,
}

impl JobState {
    /// Stable lower-case wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Parked => "parked",
            JobState::Done { .. } => "done",
            JobState::Failed => "failed",
        }
    }
}

/// A point-in-time view of one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobStatus {
    /// Service-assigned job id (monotonic; doubles as admission order).
    pub job: u64,
    /// The sweep identity the spec resolved to.
    pub sweep_id: SweepId,
    /// Current lifecycle state.
    pub state: JobState,
    /// Scheduling priority.
    pub priority: Priority,
    /// Times this job was preempted.
    pub preemptions: u64,
    /// Chunks complete at the last observation.
    pub completed_chunks: usize,
    /// Chunks in the sweep's plan (0 until first observed).
    pub num_chunks: usize,
    /// Failure message, if [`JobState::Failed`].
    pub error: Option<String>,
}

/// What a submission resolved to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Submission {
    /// The job id to poll (an existing id when deduplicated).
    pub job: u64,
    /// The sweep identity the spec resolved to.
    pub sweep_id: SweepId,
    /// The submission was answered from the result store.
    pub cache_hit: bool,
    /// The submission matched an in-flight job and returned its id.
    pub deduped: bool,
}

/// Integral service counters (the `vc-serve-report/v1` numbers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Specs submitted (including hits and dedups).
    pub submissions: u64,
    /// Submissions answered from the store without execution.
    pub hits: u64,
    /// Submissions that scheduled new work.
    pub misses: u64,
    /// Submissions folded into an in-flight job.
    pub deduped: u64,
    /// Chunk-boundary preemptions.
    pub preemptions: u64,
    /// Parked jobs that re-entered execution.
    pub resumes: u64,
    /// Jobs that finished and stored a result.
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Result-store evictions.
    pub evictions: u64,
    /// Deepest run queue observed.
    pub max_queue_depth: usize,
    /// Live result-store entries.
    pub store_entries: usize,
}

/// Why a service call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The spec could not be decoded.
    Spec(SpecError),
    /// The spec's start selection is invalid for its instance.
    Start(StartError),
    /// The result store refused an operation.
    Store(StoreError),
    /// No job with the given id.
    UnknownJob(u64),
    /// The job has not finished, so it has no result yet.
    NotDone(u64),
    /// The job failed; message attached.
    JobFailed(String),
    /// Waiting for a state change timed out.
    Timeout,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Spec(e) => write!(f, "bad spec: {e}"),
            ServeError::Start(e) => write!(f, "bad start selection: {e}"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
            ServeError::UnknownJob(job) => write!(f, "unknown job {job}"),
            ServeError::NotDone(job) => write!(f, "job {job} has no result yet"),
            ServeError::JobFailed(msg) => write!(f, "job failed: {msg}"),
            ServeError::Timeout => write!(f, "timed out waiting for a state change"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SpecError> for ServeError {
    fn from(e: SpecError) -> Self {
        ServeError::Spec(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// Everything the scheduler needs to (re)run one job, resolved at
/// submission time so the run loop never re-parses anything.
struct PreparedSweep {
    spec: SweepSpec,
    config: RunConfig,
    instance: Instance,
    identity: SweepIdentity,
}

struct JobRecord {
    status: JobStatus,
    work: Option<Arc<PreparedSweep>>,
}

struct Inner {
    jobs: BTreeMap<u64, JobRecord>,
    /// In-flight dedup index: raw SweepId -> job id.
    by_sweep: BTreeMap<u64, u64>,
    /// Queued job ids (scheduler picks by priority, then id).
    queue: Vec<u64>,
    running: Option<(u64, CancelFlag)>,
    store: ResultStore,
    tracer: RecordingTracer,
    stats: ServeStats,
    next_job: u64,
    shutdown: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signaled when the queue gains work or shutdown is requested.
    work: Condvar,
    /// Signaled on any job state change (pollers wait here).
    change: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sweep service: owns the result store, the run queue and the
/// scheduler thread driving the shared engine pool.
pub struct SweepService {
    shared: Arc<Shared>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    threads: usize,
    spool_dir: PathBuf,
}

impl SweepService {
    /// Starts the service: opens the store, creates the spool and
    /// spawns the scheduler thread.
    pub fn start(config: &ServeConfig) -> Result<Self, ServeError> {
        let store = ResultStore::open(&config.store_dir, config.max_store_entries)?;
        std::fs::create_dir_all(&config.spool_dir)
            .map_err(|e| ServeError::Store(StoreError::Io(e.to_string())))?;
        let store_entries = store.len();
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                by_sweep: BTreeMap::new(),
                queue: Vec::new(),
                running: None,
                store,
                tracer: RecordingTracer {
                    cap: Some(TRACE_CAP),
                    ..RecordingTracer::default()
                },
                stats: ServeStats {
                    store_entries,
                    ..ServeStats::default()
                },
                next_job: 1,
                shutdown: false,
            }),
            work: Condvar::new(),
            change: Condvar::new(),
        });
        let threads = config.threads.max(1);
        let spool_dir = config.spool_dir.clone();
        let scheduler = {
            let shared = Arc::clone(&shared);
            let spool_dir = spool_dir.clone();
            std::thread::spawn(move || scheduler_loop(&shared, threads, &spool_dir))
        };
        Ok(Self {
            shared,
            scheduler: Some(scheduler),
            threads,
            spool_dir,
        })
    }

    /// Submits a spec. Resolves the sweep identity, then answers from
    /// the store (cache hit), an in-flight job (dedup) or a fresh
    /// admission — in that order.
    pub fn submit(&self, spec: &SweepSpec) -> Result<Submission, ServeError> {
        // Instance construction and identity folding happen outside the
        // service lock; both are pure.
        let instance = spec.instance.build();
        let config = spec.run_config();
        let starts = config
            .starts
            .starts(instance.n())
            .map_err(ServeError::Start)?;
        let identity = spec.algorithm.identity(&instance, &config, &starts);
        let sweep_id = identity.sweep_id;

        let mut g = self.shared.lock();
        if g.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        g.stats.submissions += 1;
        if g.store.contains(sweep_id) {
            let job = g.next_job;
            g.next_job += 1;
            g.stats.hits += 1;
            g.tracer.cache_hit(job);
            g.jobs.insert(
                job,
                JobRecord {
                    status: JobStatus {
                        job,
                        sweep_id,
                        state: JobState::Done { cache_hit: true },
                        priority: spec.priority,
                        preemptions: 0,
                        completed_chunks: 0,
                        num_chunks: 0,
                        error: None,
                    },
                    work: None,
                },
            );
            self.shared.change.notify_all();
            return Ok(Submission {
                job,
                sweep_id,
                cache_hit: true,
                deduped: false,
            });
        }
        if let Some(&job) = g.by_sweep.get(&sweep_id.raw()) {
            g.stats.deduped += 1;
            return Ok(Submission {
                job,
                sweep_id,
                cache_hit: false,
                deduped: true,
            });
        }
        let job = g.next_job;
        g.next_job += 1;
        g.stats.misses += 1;
        g.jobs.insert(
            job,
            JobRecord {
                status: JobStatus {
                    job,
                    sweep_id,
                    state: JobState::Queued,
                    priority: spec.priority,
                    preemptions: 0,
                    completed_chunks: 0,
                    num_chunks: 0,
                    error: None,
                },
                work: Some(Arc::new(PreparedSweep {
                    spec: *spec,
                    config,
                    instance,
                    identity,
                })),
            },
        );
        g.by_sweep.insert(sweep_id.raw(), job);
        g.queue.push(job);
        let depth = g.queue.len();
        g.stats.max_queue_depth = g.stats.max_queue_depth.max(depth);
        g.tracer.job_admitted(job, depth);
        // An interactive arrival preempts a running batch job at its
        // next chunk boundary: trip the flag, the engine parks itself.
        if spec.priority == Priority::Interactive {
            if let Some((running_id, flag)) = &g.running {
                let running_batch = g
                    .jobs
                    .get(running_id)
                    .is_some_and(|r| r.status.priority == Priority::Batch);
                if running_batch {
                    flag.cancel();
                }
            }
        }
        self.shared.work.notify_all();
        self.shared.change.notify_all();
        Ok(Submission {
            job,
            sweep_id,
            cache_hit: false,
            deduped: false,
        })
    }

    /// The current status of `job`.
    pub fn status(&self, job: u64) -> Result<JobStatus, ServeError> {
        let g = self.shared.lock();
        g.jobs
            .get(&job)
            .map(|r| r.status.clone())
            .ok_or(ServeError::UnknownJob(job))
    }

    /// Blocks until `pred` holds for `job`'s status, or `timeout`
    /// elapses ([`ServeError::Timeout`]).
    pub fn wait_job(
        &self,
        job: u64,
        timeout: Duration,
        pred: impl Fn(&JobStatus) -> bool,
    ) -> Result<JobStatus, ServeError> {
        let mut g = self.shared.lock();
        loop {
            let status = g
                .jobs
                .get(&job)
                .map(|r| r.status.clone())
                .ok_or(ServeError::UnknownJob(job))?;
            if pred(&status) {
                return Ok(status);
            }
            let (guard, wait) = self
                .shared
                .change
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            g = guard;
            if wait.timed_out() {
                return Err(ServeError::Timeout);
            }
        }
    }

    /// Blocks until `job` is done and returns its stored result payload
    /// (the sweep's final checkpoint document).
    pub fn wait_result(&self, job: u64, timeout: Duration) -> Result<String, ServeError> {
        let status = self.wait_job(job, timeout, |s| {
            matches!(s.state, JobState::Done { .. } | JobState::Failed)
        })?;
        self.result_of(&status)
    }

    /// Returns the stored result payload of a finished `job`.
    pub fn result(&self, job: u64) -> Result<String, ServeError> {
        let status = self.status(job)?;
        self.result_of(&status)
    }

    fn result_of(&self, status: &JobStatus) -> Result<String, ServeError> {
        match status.state {
            JobState::Done { .. } => {
                let g = self.shared.lock();
                Ok(g.store.load(status.sweep_id)?)
            }
            JobState::Failed => Err(ServeError::JobFailed(
                status
                    .error
                    .clone()
                    .unwrap_or_else(|| "unknown".to_string()),
            )),
            _ => Err(ServeError::NotDone(status.job)),
        }
    }

    /// Blocks until the queue is empty and nothing is running.
    pub fn wait_idle(&self, timeout: Duration) -> Result<ServeStats, ServeError> {
        let mut g = self.shared.lock();
        loop {
            if g.queue.is_empty() && g.running.is_none() {
                return Ok(self.stats_of(&g));
            }
            let (guard, wait) = self
                .shared
                .change
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            g = guard;
            if wait.timed_out() {
                return Err(ServeError::Timeout);
            }
        }
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServeStats {
        let g = self.shared.lock();
        self.stats_of(&g)
    }

    fn stats_of(&self, g: &Inner) -> ServeStats {
        ServeStats {
            evictions: g.store.evictions(),
            store_entries: g.store.len(),
            ..g.stats
        }
    }

    /// The trace events recorded so far (scheduling transitions).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.shared.lock().tracer.events.clone()
    }

    /// Emits the `vc-serve-report/v1` stats document as compact JSON
    /// (single line, so it can double as a protocol payload).
    pub fn report_json(&self) -> String {
        use std::fmt::Write as _;
        let g = self.shared.lock();
        let stats = self.stats_of(&g);
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{REPORT_SCHEMA}\",\"threads\":{},\"submissions\":{},\
             \"hits\":{},\"misses\":{},\"deduped\":{},\"preemptions\":{},\"resumes\":{},\
             \"completed\":{},\"failed\":{},\"evictions\":{},\"queue_depth\":{},\
             \"max_queue_depth\":{},\"store_entries\":{},\"jobs\":[",
            self.threads,
            stats.submissions,
            stats.hits,
            stats.misses,
            stats.deduped,
            stats.preemptions,
            stats.resumes,
            stats.completed,
            stats.failed,
            stats.evictions,
            g.queue.len(),
            stats.max_queue_depth,
            stats.store_entries,
        );
        for (i, record) in g.jobs.values().enumerate() {
            let s = &record.status;
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"job\":{},\"sweep_id\":\"{}\",\"state\":\"{}\",\"cache_hit\":{},\
                 \"preemptions\":{},\"completed_chunks\":{},\"num_chunks\":{}}}",
                s.job,
                s.sweep_id,
                s.state.name(),
                matches!(s.state, JobState::Done { cache_hit: true }),
                s.preemptions,
                s.completed_chunks,
                s.num_chunks,
            );
        }
        out.push_str("]}");
        out
    }

    /// Stops accepting work, cancels any running job (it parks like any
    /// other preemption), joins the scheduler and returns final stats.
    /// Queued jobs stay queued and are reported as such.
    pub fn shutdown(mut self) -> ServeStats {
        {
            let mut g = self.shared.lock();
            g.shutdown = true;
            if let Some((_, flag)) = &g.running {
                flag.cancel();
            }
            self.shared.work.notify_all();
            self.shared.change.notify_all();
        }
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        self.stats()
    }

    /// The spool path for a sweep's in-flight checkpoint.
    pub fn spool_path(&self, sweep_id: SweepId) -> PathBuf {
        spool_path(&self.spool_dir, sweep_id)
    }
}

impl Drop for SweepService {
    fn drop(&mut self) {
        let mut g = self.shared.lock();
        g.shutdown = true;
        if let Some((_, flag)) = &g.running {
            flag.cancel();
        }
        self.shared.work.notify_all();
        drop(g);
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

fn spool_path(spool_dir: &std::path::Path, sweep_id: SweepId) -> PathBuf {
    spool_dir.join(format!("{sweep_id}.ckpt.json"))
}

/// Picks the queue index to run next: highest priority first, then
/// lowest job id (admission order). Returns `None` on an empty queue.
fn pick_next(g: &Inner) -> Option<usize> {
    let mut best: Option<(usize, Priority, u64)> = None;
    for (idx, &job) in g.queue.iter().enumerate() {
        let priority = g
            .jobs
            .get(&job)
            .map(|r| r.status.priority)
            .unwrap_or(Priority::Batch);
        let better = match best {
            None => true,
            Some((_, bp, bj)) => priority > bp || (priority == bp && job < bj),
        };
        if better {
            best = Some((idx, priority, job));
        }
    }
    best.map(|(idx, _, _)| idx)
}

fn scheduler_loop(shared: &Shared, threads: usize, spool_dir: &std::path::Path) {
    loop {
        // Claim the next job (or exit on shutdown).
        let (job, work, flag) = {
            let mut g = shared.lock();
            let claimed = loop {
                if g.shutdown {
                    return;
                }
                if let Some(idx) = pick_next(&g) {
                    break g.queue.remove(idx);
                }
                g = shared.work.wait(g).unwrap_or_else(PoisonError::into_inner);
            };
            let flag = CancelFlag::new();
            let inner = &mut *g;
            let Some(record) = inner.jobs.get_mut(&claimed) else {
                continue;
            };
            let Some(work) = record.work.clone() else {
                continue;
            };
            if record.status.state == JobState::Parked {
                inner.stats.resumes += 1;
                inner
                    .tracer
                    .job_resumed(claimed, record.status.completed_chunks);
            }
            record.status.state = JobState::Running;
            inner.running = Some((claimed, flag.clone()));
            shared.change.notify_all();
            (claimed, work, flag)
        };

        // Run outside the lock. A tripped flag stops chunk claims; the
        // engine still writes the (partial) checkpoint file.
        let ckpt = spool_path(spool_dir, work.identity.sweep_id);
        let engine = Engine::with_threads(threads).with_cancel_flag(flag);
        let outcome =
            work.spec
                .algorithm
                .run_checkpointed(&engine, &work.instance, &work.config, &ckpt);

        let mut g = shared.lock();
        let inner = &mut *g;
        inner.running = None;
        let Some(record) = inner.jobs.get_mut(&job) else {
            shared.change.notify_all();
            continue;
        };
        match outcome {
            Ok(report) => {
                record.status.completed_chunks = report.completed_chunks;
                record.status.num_chunks = report.num_chunks;
                if report.is_complete() {
                    let stored = std::fs::read_to_string(&ckpt)
                        .map_err(|e| e.to_string())
                        .and_then(|payload| {
                            inner
                                .store
                                .store(&work.identity, &payload)
                                .map_err(|e| e.to_string())
                        });
                    match stored {
                        Ok(()) => {
                            let _ = std::fs::remove_file(&ckpt);
                            record.status.state = JobState::Done { cache_hit: false };
                            inner.stats.completed += 1;
                        }
                        Err(msg) => {
                            record.status.state = JobState::Failed;
                            record.status.error = Some(msg);
                            inner.stats.failed += 1;
                        }
                    }
                    inner.by_sweep.remove(&work.identity.sweep_id.raw());
                } else {
                    // Preempted at a chunk boundary: park and re-queue.
                    record.status.state = JobState::Parked;
                    record.status.preemptions += 1;
                    inner.stats.preemptions += 1;
                    inner.tracer.job_preempted(job, report.completed_chunks);
                    inner.queue.push(job);
                    inner.stats.max_queue_depth =
                        inner.stats.max_queue_depth.max(inner.queue.len());
                }
            }
            Err(e) => {
                record.status.state = JobState::Failed;
                record.status.error = Some(e.to_string());
                inner.stats.failed += 1;
                inner.by_sweep.remove(&work.identity.sweep_id.raw());
            }
        }
        shared.change.notify_all();
        shared.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AlgorithmRef, InstanceRef};

    const WAIT: Duration = Duration::from_secs(120);

    fn temp_config(tag: &str, threads: usize) -> ServeConfig {
        let root =
            std::env::temp_dir().join(format!("vc-serve-sched-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        ServeConfig {
            threads,
            store_dir: root.join("store"),
            spool_dir: root.join("spool"),
            max_store_entries: None,
        }
    }

    fn small_spec(seed: u64) -> SweepSpec {
        SweepSpec::new(
            InstanceRef::FullBinaryTree { n: 255, seed },
            AlgorithmRef::LeafDistance,
        )
    }

    #[test]
    fn miss_then_hit_is_byte_identical() {
        let config = temp_config("hit", 2);
        let service = SweepService::start(&config).expect("start");
        let spec = small_spec(5);
        let cold = service.submit(&spec).expect("submit");
        assert!(!cold.cache_hit && !cold.deduped);
        let cold_bytes = service.wait_result(cold.job, WAIT).expect("cold result");
        let warm = service.submit(&spec).expect("resubmit");
        assert!(warm.cache_hit);
        assert_ne!(warm.job, cold.job);
        let warm_bytes = service.wait_result(warm.job, WAIT).expect("warm result");
        assert_eq!(cold_bytes, warm_bytes);
        let stats = service.shutdown();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.completed, 1);
        let _ = std::fs::remove_dir_all(config.store_dir.parent().unwrap_or(&config.store_dir));
    }

    #[test]
    fn duplicate_inflight_submission_returns_the_same_job() {
        let config = temp_config("dedup", 1);
        let service = SweepService::start(&config).expect("start");
        // Park a long blocker on the (single) scheduler first, so the
        // job under test stays queued while its duplicate arrives.
        let blocker = SweepSpec {
            tape_seed: Some(3),
            ..SweepSpec::new(
                InstanceRef::FullBinaryTree { n: 65535, seed: 2 },
                AlgorithmRef::LeafRandomWalk { step_factor: 32 },
            )
        };
        let blocking = service.submit(&blocker).expect("submit blocker");
        service
            .wait_job(blocking.job, WAIT, |s| s.state == JobState::Running)
            .expect("blocker runs");
        let spec = small_spec(8);
        let first = service.submit(&spec).expect("submit");
        let second = service.submit(&spec).expect("duplicate");
        assert!(second.deduped);
        assert_eq!(second.job, first.job);
        service.wait_result(first.job, WAIT).expect("result");
        let stats = service.shutdown();
        assert_eq!(stats.deduped, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.completed, 2);
        let _ = std::fs::remove_dir_all(config.store_dir.parent().unwrap_or(&config.store_dir));
    }

    #[test]
    fn interactive_preempts_batch_and_resume_is_byte_identical() {
        let config = temp_config("preempt", 2);
        let service = SweepService::start(&config).expect("start");
        let batch = SweepSpec {
            tape_seed: Some(7),
            ..SweepSpec::new(
                InstanceRef::FullBinaryTree { n: 65535, seed: 9 },
                AlgorithmRef::LeafRandomWalk { step_factor: 32 },
            )
        };
        let victim = service.submit(&batch).expect("submit batch");
        service
            .wait_job(victim.job, WAIT, |s| s.state == JobState::Running)
            .expect("batch runs");
        let interactive = SweepSpec {
            priority: Priority::Interactive,
            ..small_spec(1)
        };
        let urgent = service.submit(&interactive).expect("submit interactive");
        service.wait_result(urgent.job, WAIT).expect("urgent done");
        let preempted_bytes = service.wait_result(victim.job, WAIT).expect("victim done");
        let status = service.status(victim.job).expect("status");
        assert!(status.preemptions >= 1, "batch job was never preempted");
        let stats = service.stats();
        assert!(stats.preemptions >= 1);
        assert!(stats.resumes >= 1);
        let events = service.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::JobPreempted { job, .. } if *job == victim.job)));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::JobResumed { job, .. } if *job == victim.job)));
        drop(service);

        // Reference: the same sweep, uninterrupted, fresh store.
        let reference = temp_config("preempt-ref", 2);
        let ref_service = SweepService::start(&reference).expect("start ref");
        let sub = ref_service.submit(&batch).expect("submit ref");
        let clean_bytes = ref_service.wait_result(sub.job, WAIT).expect("ref done");
        assert_eq!(
            preempted_bytes, clean_bytes,
            "preempted+resumed checkpoint diverged from the uninterrupted run"
        );
        drop(ref_service);
        let _ = std::fs::remove_dir_all(config.store_dir.parent().unwrap_or(&config.store_dir));
        let _ =
            std::fs::remove_dir_all(reference.store_dir.parent().unwrap_or(&reference.store_dir));
    }

    #[test]
    fn report_is_valid_compact_json() {
        let config = temp_config("report", 1);
        let service = SweepService::start(&config).expect("start");
        let sub = service.submit(&small_spec(2)).expect("submit");
        service.wait_result(sub.job, WAIT).expect("result");
        let report = service.report_json();
        assert!(!report.contains('\n'));
        let doc = vc_json::parse(&report).expect("report parses");
        assert_eq!(
            doc.get("schema").and_then(vc_json::Value::as_str),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(doc.get("misses").and_then(vc_json::Value::as_u64), Some(1));
        let jobs = doc
            .get("jobs")
            .and_then(vc_json::Value::as_arr)
            .expect("jobs");
        assert_eq!(jobs.len(), 1);
        assert_eq!(
            jobs[0].get("state").and_then(vc_json::Value::as_str),
            Some("done")
        );
        drop(service);
        let _ = std::fs::remove_dir_all(config.store_dir.parent().unwrap_or(&config.store_dir));
    }
}
