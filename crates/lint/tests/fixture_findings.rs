//! Per-code fixture self-tests: every rule code has a minimal violating
//! tree under `tests/fixtures/percode/` that produces exactly one finding
//! with an exact `code:line:col` anchor, and every suppressible
//! determinism rule (VC009–VC012) has a pragma-suppressed variant that
//! runs clean.

use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/percode")
        .join(name)
}

fn run(name: &str) -> vc_lint::Report {
    let dir = fixture(name);
    assert!(dir.is_dir(), "missing fixture tree: {}", dir.display());
    vc_lint::run(&dir)
}

#[test]
fn each_rule_code_has_a_minimal_violating_fixture() {
    let expected: &[(&str, &str, u32, u32, &str)] = &[
        ("vc001", "crates/model/src/lib.rs", 6, 6, "VC001"),
        ("vc002", "crates/model/src/lib.rs", 1, 1, "VC002"),
        ("vc003", "crates/bench/src/lib.rs", 2, 23, "VC003"),
        ("vc004", "crates/bench/benches/no_cite.rs", 1, 1, "VC004"),
        ("vc005", "crates/model/src/oracle.rs", 2, 23, "VC005"),
        ("vc006", "examples/clock.rs", 3, 25, "VC006"),
        ("vc007", "tests/t.rs", 3, 25, "VC007"),
        ("vc008", "examples/id.rs", 2, 19, "VC008"),
        ("vc009", "crates/engine/src/lib.rs", 3, 23, "VC009"),
        ("vc010", "crates/trace/src/lib.rs", 7, 22, "VC010"),
        ("vc011", "examples/env.rs", 3, 18, "VC011"),
        ("vc012", "crates/engine/src/lib.rs", 6, 7, "VC012"),
        ("vc012_store", "crates/graph/src/store.rs", 6, 7, "VC012"),
        ("vc012_json", "crates/json/src/lib.rs", 6, 7, "VC012"),
        ("vc013", "examples/unused.rs", 2, 1, "VC013"),
        ("vc014", "examples/malformed.rs", 2, 1, "VC014"),
        ("vc015", "examples/sleepy.rs", 3, 18, "VC015"),
    ];
    for &(name, file, line, col, code) in expected {
        let r = run(name);
        assert_eq!(
            r.findings.len(),
            1,
            "{name}: expected exactly one finding, got {:?}",
            r.findings
        );
        let f = &r.findings[0];
        assert_eq!(
            (f.file.as_str(), f.line, f.col, f.code),
            (file, line, col, code),
            "{name}: wrong anchor"
        );
        assert_eq!(r.suppressed, 0, "{name}: nothing should be suppressed");
    }
}

#[test]
fn suppressed_variants_run_clean_and_count_the_suppression() {
    for name in [
        "vc009_suppressed",
        "vc010_suppressed",
        "vc011_suppressed",
        "vc012_suppressed",
    ] {
        let r = run(name);
        assert!(
            r.findings.is_empty(),
            "{name}: expected a clean run, got {:?}",
            r.findings
        );
        assert_eq!(r.suppressed, 1, "{name}: the pragma must count as used");
    }
}

#[test]
fn the_catalog_covers_every_fixture_code() {
    let codes: Vec<&str> = vc_lint::catalog().iter().map(|i| i.code).collect();
    for n in 1..=15 {
        let code = format!("VC{n:03}");
        assert!(
            codes.contains(&code.as_str()),
            "missing from catalog: {code}"
        );
    }
}
