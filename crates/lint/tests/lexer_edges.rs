//! Lexer edge cases through the public API, plus the property the lexer
//! exists to guarantee: forbidden tokens inside literals and comments are
//! invisible to every rule.

use vc_lint::lexer::{lex, TokKind};

fn kinds_and_texts(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .into_iter()
        .map(|t| (t.kind, src[t.start..t.end].to_string()))
        .collect()
}

#[test]
fn raw_strings_with_hash_delimiters_are_single_tokens() {
    let src = r###"let s = r#"contains "quotes" and # marks"#; let t = r##"outer "# inner"##;"###;
    let toks = kinds_and_texts(src);
    let raws: Vec<&String> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::RawStr)
        .map(|(_, s)| s)
        .collect();
    assert_eq!(raws.len(), 2, "tokens: {toks:?}");
    assert!(raws[0].starts_with("r#\"") && raws[0].ends_with("\"#"));
    assert!(raws[1].starts_with("r##\"") && raws[1].ends_with("\"##"));
}

#[test]
fn nested_block_comments_are_one_token() {
    let src = "/* outer /* inner */ still outer */ fn f() {}";
    let toks = kinds_and_texts(src);
    assert_eq!(toks[0].0, TokKind::BlockComment);
    assert!(toks[0].1.ends_with("still outer */"));
    assert!(toks.iter().any(|(k, s)| *k == TokKind::Ident && s == "fn"));
}

#[test]
fn byte_and_char_literals_do_not_swallow_code() {
    let src = "let a = b'x'; let c = '\\n'; let d = 'q'; let e = b\"bytes\";";
    let toks = kinds_and_texts(src);
    let lits: Vec<(TokKind, &str)> = toks
        .iter()
        .filter(|(k, _)| matches!(k, TokKind::Byte | TokKind::Char | TokKind::ByteStr))
        .map(|(k, s)| (*k, s.as_str()))
        .collect();
    assert_eq!(
        lits,
        vec![
            (TokKind::Byte, "b'x'"),
            (TokKind::Char, "'\\n'"),
            (TokKind::Char, "'q'"),
            (TokKind::ByteStr, "b\"bytes\""),
        ]
    );
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> &'static str { \"s\" }";
    let toks = kinds_and_texts(src);
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Lifetime)
        .map(|(_, s)| s.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    assert!(!toks.iter().any(|(k, _)| *k == TokKind::Char));
}

#[test]
fn inner_doc_comments_are_line_comments() {
    let src = "//! Inner docs mentioning .unwrap() freely.\n/// Outer docs too.\nfn f() {}\n";
    let toks = kinds_and_texts(src);
    let comments: Vec<&str> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::LineComment)
        .map(|(_, s)| s.as_str())
        .collect();
    assert_eq!(comments.len(), 2);
    assert!(comments[0].starts_with("//!"));
    assert!(comments[1].starts_with("///"));
    assert!(!toks
        .iter()
        .any(|(k, s)| *k == TokKind::Ident && s == "unwrap"));
}

/// The end-to-end property: a file stuffed with every forbidden spelling
/// — all inside literals and comments — produces zero findings, even in
/// the most heavily-scanned location (a panic-free, merge-tainted,
/// cast-scoped engine source file).
#[test]
fn literals_and_comments_are_invisible_to_every_rule() {
    let dir = std::env::temp_dir().join(format!("vc-lint-edges-{}", std::process::id()));
    let src_dir = dir.join("crates/engine/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    let src = r###"#![deny(missing_docs)]
//! A file where every forbidden token hides in a literal or comment:
//! .unwrap(), panic!, HashMap, Instant::now, env::var, catch_unwind,
//! `x as u32`, 0x9e3779b97f4a7c15, and even the pragma syntax
//! `vc-lint: allow(VC001, reason = "quoted")`.

/* block comment: .unwrap() HashMap catch_unwind /* nested: env::var */ Instant::now */

/// Returns spellings that must stay invisible to the linter.
pub fn spells() -> Vec<&'static str> {
    vec![
        "x.unwrap() and panic!(\"boom\")",
        r#"HashMap::new() and HashSet too"#,
        r##"Instant::now() plus "# tricky fence"##,
        "std::env::var(\"PATH\")",
        "catch_unwind(|| sweep_fingerprint(0x9e3779b97f4a7c15))",
        "total as u32",
    ]
}
"###;
    std::fs::write(src_dir.join("lib.rs"), src).unwrap();
    let report = vc_lint::run(&dir);
    assert!(
        report.findings.is_empty(),
        "literals leaked into rules: {:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
