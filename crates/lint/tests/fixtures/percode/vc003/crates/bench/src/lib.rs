//! Fixture: a hashed collection on a figure/table path.
use std::collections::HashMap;
