//! Fixture: a hashed collection in the execution hot path.
use std::collections::HashMap;
