//! Fixture: crate root without the deny(missing_docs) attribute.

/// Documented anyway.
pub fn f() {}
