//! Fixture: a suppression that silences nothing.
// vc-lint: allow(VC009, reason = "fixture: nothing below uses a hashed collection")
fn main() {}
