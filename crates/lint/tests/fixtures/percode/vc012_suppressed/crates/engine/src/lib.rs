#![deny(missing_docs)]
//! Fixture: the same cast, suppressed with a range argument.

/// Provably in range.
pub fn squash(x: u64) -> u32 {
    (x % 7) as u32 // vc-lint: allow(VC012, reason = "fixture: value is a residue mod 7, always below u32::MAX")
}
