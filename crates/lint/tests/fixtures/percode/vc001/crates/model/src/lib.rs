#![deny(missing_docs)]
//! Fixture: a panic path in non-test model code.

/// Unwraps where an error should be returned.
pub fn f(v: Option<u32>) -> u32 {
    v.unwrap()
}
