//! Fixture: a splitmix mixing constant outside vc-ident.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
fn main() {}
