#![deny(missing_docs)]
//! Fixture: a hashed collection in a merge-tainted crate.
use std::collections::HashMap;
