//! Fixture: a pragma with no reason.
// vc-lint: allow(VC009)
fn main() {}
