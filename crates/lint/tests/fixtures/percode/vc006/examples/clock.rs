//! Fixture: a hidden clock read.
fn main() {
    let _t = std::time::Instant::now();
}
