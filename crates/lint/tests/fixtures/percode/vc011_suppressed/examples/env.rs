//! Fixture: the same environment read, suppressed with a reason.
fn main() {
    let _ = std::env::var("HOME"); // vc-lint: allow(VC011, reason = "fixture: example binary, not part of a sweep")
}
