#![deny(missing_docs)]
//! Fixture: the same float field, suppressed with a reason.

/// A rates struct.
pub struct Rates {
    /// Wall-clock derived.
    pub rate: f64, // vc-lint: allow(VC010, reason = "fixture: wall-clock rate, quarantined from merged counts")
}
