#![deny(missing_docs)]
//! Fixture: the crate root is fine; the violation is in store.rs.
