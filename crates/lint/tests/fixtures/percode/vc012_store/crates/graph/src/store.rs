//! Fixture: a truncating cast on an untrusted on-disk length field in the
//! binary instance-store decoder.

/// Narrows a decoded length without a range check.
pub fn length(x: u64) -> usize {
    x as usize
}
