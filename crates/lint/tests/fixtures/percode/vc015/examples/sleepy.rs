//! Fixture: a blocking wait outside the fleet supervisor.
fn main() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
