//! Fixture: ambient environment read outside the sanctioned sites.
fn main() {
    let _ = std::env::var("HOME");
}
