#![deny(missing_docs)]
//! Fixture: a truncating cast on a counter in a merge path.

/// Drops the high 32 bits.
pub fn squash(x: u64) -> u32 {
    x as u32
}
