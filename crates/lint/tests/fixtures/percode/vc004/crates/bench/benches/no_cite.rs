//! A benchmark whose header cites no paper artifact.
fn main() {}
