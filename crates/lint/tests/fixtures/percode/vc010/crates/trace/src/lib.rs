#![deny(missing_docs)]
//! Fixture: a float smuggled into a merged-counts struct.

/// A counts struct with a float field.
pub struct Counts {
    /// Rounds under reordered merges.
    pub mean_volume: f64,
}
