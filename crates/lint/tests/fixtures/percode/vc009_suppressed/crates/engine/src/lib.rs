#![deny(missing_docs)]
//! Fixture: the same hashed collection, suppressed with a reason.
// vc-lint: allow(VC009, reason = "fixture: keyed scratch whose iteration order is never observed")
use std::collections::HashMap;
