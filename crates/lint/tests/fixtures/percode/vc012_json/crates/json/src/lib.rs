#![deny(missing_docs)]
//! Fixture: a truncating cast on a parsed number in the JSON decoder.

/// Narrows a parsed count without a range check.
pub fn count(x: f64) -> usize {
    x as usize
}
