//! Fixture: panic isolation outside the engine.
fn main() {
    let _ = std::panic::catch_unwind(|| 1);
}
