// Root-level test swallowing panics (centralized-panic-isolation bait).
#[test]
fn swallow() {
    let _ = std::panic::catch_unwind(|| 1);
}
