// Ad-hoc identity hashing outside vc-ident (content-addressed-identity bait).
fn sweep_fingerprint(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn main() {
    println!("{}", sweep_fingerprint(7));
}
