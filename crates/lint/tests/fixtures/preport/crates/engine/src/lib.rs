//! Engine stand-in: the docs attribute is missing on purpose.

/// Times a chunk with a raw clock read (no-hidden-clocks bait).
pub fn time_chunk() -> std::time::Instant {
    std::time::Instant::now()
}

/// Panic isolation is allowed inside the engine (no finding here).
pub fn isolate() {
    let _ = std::panic::catch_unwind(|| ());
}
