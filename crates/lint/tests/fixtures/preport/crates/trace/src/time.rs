//! Sanctioned clock module: `Instant::now` is allowlisted here.

/// Reads the clock (no finding: this file is the allowlist entry).
pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}
