//! Parity fixture: vc-model stand-in.
#![deny(missing_docs)]

/// Reads the flag, panicking on absence (no-panic-paths bait).
pub fn read_flag(v: Option<u32>) -> u32 {
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let _ = Some(1).unwrap();
    }
}
