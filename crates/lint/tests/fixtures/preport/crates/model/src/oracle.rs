//! Oracle stand-in (flat-oracle-state bait).
use std::collections::HashMap;

/// Per-node scratch keyed by id — exactly what the rule forbids.
pub type Scratch = HashMap<usize, u64>;

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    #[test]
    fn hashed_fixture() {
        let _ = HashSet::<u32>::new();
    }
}
