// A bench file whose header forgets to cite its paper artifact.
use std::collections::HashSet;

fn main() {
    let _ = HashSet::<u8>::new();
}
