// Reproduces Table 1 row 3 (parity fixture; ordered collections only).
use std::collections::BTreeMap;

fn main() {
    let _ = BTreeMap::<u8, u8>::new();
}
