//! Bench stand-in (ordered-collections-only bait).
use std::collections::HashMap;

/// Figure rows keyed by case name — iteration order feeds the tables.
pub type Rows = HashMap<String, u64>;
