//! Parity fixture: vc-faults stand-in, clean.
#![deny(missing_docs)]

/// A placeholder item.
pub fn nop() {}
