//! Ident stand-in: the one place identity constants may live.
#![deny(missing_docs)]

/// The splitmix64 golden-gamma increment (allowlisted here).
pub const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
