//! Parity fixture: vc-graph stand-in, clean.
#![deny(missing_docs)]

/// A placeholder item.
pub fn nop() {}
