//! Port-parity regression: on the `tests/fixtures/preport/` tree, the
//! rules ported from the xtask-embedded linter must report exactly the
//! findings the pre-port linter reported.
//!
//! The expectation table below is ground truth captured by running the
//! last xtask-embedded build of the linter against this fixture tree
//! (file and line per finding; the old linter had no columns). The tree
//! exercises all eight ported rules, their allowlists, and their
//! `#[cfg(test)]` handling in one place.

use std::path::PathBuf;

#[test]
fn ported_rules_match_the_pre_port_linter_on_the_parity_tree() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/preport");
    assert!(root.is_dir(), "missing fixture tree: {}", root.display());
    let report = vc_lint::run(&root);

    // (file, line, code) per pre-port finding, in the new deterministic
    // sort order. VC00x maps 1:1 onto the old rule names: no-panic-paths,
    // deny-missing-docs, ordered-collections-only, bench-provenance,
    // flat-oracle-state, no-hidden-clocks, centralized-panic-isolation,
    // content-addressed-identity.
    let expected: &[(&str, u32, &str)] = &[
        ("crates/bench/benches/no_anchor.rs", 1, "VC004"),
        ("crates/bench/benches/no_anchor.rs", 2, "VC003"),
        ("crates/bench/benches/no_anchor.rs", 5, "VC003"),
        ("crates/bench/src/lib.rs", 2, "VC003"),
        ("crates/bench/src/lib.rs", 5, "VC003"),
        ("crates/engine/src/lib.rs", 1, "VC002"),
        ("crates/engine/src/lib.rs", 5, "VC006"),
        ("crates/model/src/lib.rs", 6, "VC001"),
        ("crates/model/src/oracle.rs", 2, "VC005"),
        ("crates/model/src/oracle.rs", 5, "VC005"),
        ("crates/model/src/oracle.rs", 9, "VC005"),
        ("crates/model/src/oracle.rs", 12, "VC005"),
        ("examples/demo.rs", 2, "VC008"),
        ("examples/demo.rs", 3, "VC008"),
        ("examples/demo.rs", 7, "VC008"),
        ("tests/kill.rs", 4, "VC007"),
    ];
    let got: Vec<(&str, u32, &str)> = report
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.code))
        .collect();
    assert_eq!(got, expected, "full findings: {:#?}", report.findings);
    assert_eq!(report.suppressed, 0);
}

#[test]
fn every_parity_finding_carries_a_nonzero_column() {
    // The port is allowed to *add* precision: each finding must now carry
    // a 1-indexed column pointing into the offending line.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/preport");
    let report = vc_lint::run(&root);
    for f in &report.findings {
        assert!(f.col >= 1, "finding without a column: {f}");
    }
}
