//! vc-lint: the span-aware determinism linter for this workspace.
//!
//! The repository's architectural invariants — panic-free core crates,
//! ordered collections on result paths, centralized clocks, env access
//! and panic isolation, content-addressed identity — are enforced by a
//! small token-level linter rather than by convention. This crate is that
//! linter: dependency-free, driven by `cargo run -p xtask -- lint`.
//!
//! Structure:
//!
//! - [`lexer`]: a minimal Rust lexer producing spanned tokens. Strings,
//!   raw strings, byte strings, char/byte literals, lifetimes and nested
//!   block comments are single tokens, so rules match token sequences
//!   instead of substrings and never fire on text inside literals or
//!   comments.
//! - [`source`]: workspace loading, `target/`/`vendor/` skipping, and
//!   `#[cfg(test)]` masking.
//! - [`rules`]: the rule registry. Every rule carries a stable code
//!   (`VC001`…); see DESIGN.md §13 for the catalog.
//! - [`pragma`]: inline suppressions
//!   (`// vc-lint: allow(VC00x, reason = "…")`) with mandatory reasons;
//!   unused or malformed suppressions are themselves findings.
//! - [`report`]: deterministic ordering, human rendering, and the
//!   `vc-lint-report/v1` JSON document.
//!
//! [`run`] wires these together: load, check every rule, apply
//! suppressions, flag suppression-hygiene violations, sort.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod source;

pub use report::{Finding, Report, REPORT_SCHEMA};
pub use rules::{catalog, registry, Rule, RuleInfo};
pub use source::Workspace;

use std::path::Path;

/// Runs the full rule registry against the workspace rooted at `root`
/// and returns the sorted report.
///
/// Suppression semantics: a finding is silenced when a well-formed
/// pragma in the same file lists its code and sits on the finding's own
/// line (trailing form) or the line directly above (standalone form).
/// Every silenced finding increments [`Report::suppressed`]; every
/// pragma code that silences nothing becomes a `VC013` finding and every
/// pragma that fails to parse becomes a `VC014` finding — neither of
/// which can be suppressed.
pub fn run(root: &Path) -> Report {
    let ws = Workspace::load(root);
    let mut findings = Vec::new();
    for rule in rules::registry() {
        rule.check(&ws, &mut findings);
    }

    let mut pragmas = Vec::new();
    let mut malformed = Vec::new();
    for f in &ws.files {
        let (p, m) = pragma::collect(f);
        pragmas.extend(p);
        malformed.extend(m);
    }

    let mut used: Vec<Vec<bool>> = pragmas.iter().map(|p| vec![false; p.codes.len()]).collect();
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for f in findings {
        let mut hit = false;
        for (pi, p) in pragmas.iter().enumerate() {
            if p.file != f.file || (f.line != p.line && f.line != p.line + 1) {
                continue;
            }
            if let Some(ci) = p.codes.iter().position(|c| c == f.code) {
                used[pi][ci] = true;
                hit = true;
            }
        }
        if hit {
            suppressed += 1;
        } else {
            kept.push(f);
        }
    }

    for (pi, p) in pragmas.iter().enumerate() {
        for (ci, code) in p.codes.iter().enumerate() {
            if used[pi][ci] {
                continue;
            }
            kept.push(Finding {
                file: p.file.clone(),
                line: p.line,
                col: p.col,
                code: rules::UNUSED_SUPPRESSION.code,
                rule: rules::UNUSED_SUPPRESSION.name,
                message: format!(
                    "suppression of {code} matches no finding on this line or the next; \
                     remove it (its reason was: {:?})",
                    p.reason
                ),
            });
        }
    }

    for m in malformed {
        kept.push(Finding {
            file: m.file,
            line: m.line,
            col: m.col,
            code: rules::MALFORMED_SUPPRESSION.code,
            rule: rules::MALFORMED_SUPPRESSION.name,
            message: format!("malformed vc-lint pragma: {}", m.error),
        });
    }

    let mut report = Report {
        findings: kept,
        suppressed,
        files_scanned: ws.files.len(),
    };
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static NEXT: AtomicUsize = AtomicUsize::new(0);

    fn tree(files: &[(&str, &str)]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vc-lint-run-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        for (rel, text) in files {
            let path = dir.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, text).unwrap();
        }
        dir
    }

    #[test]
    fn standalone_pragma_suppresses_the_line_below() {
        let dir = tree(&[(
            "crates/stats/src/lib.rs",
            "// vc-lint: allow(VC009, reason = \"keyed scratch, order never observed\")\n\
             use std::collections::HashMap;\n",
        )]);
        let r = run(&dir);
        assert!(r.findings.is_empty(), "unexpected: {:?}", r.findings);
        assert_eq!(r.suppressed, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trailing_pragma_suppresses_its_own_line() {
        let dir = tree(&[(
            "crates/stats/src/lib.rs",
            "use std::collections::HashMap; // vc-lint: allow(VC009, reason = \"import only\")\n\
             struct S;\n",
        )]);
        let r = run(&dir);
        assert!(r.findings.is_empty(), "unexpected: {:?}", r.findings);
        assert_eq!(r.suppressed, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unused_suppressions_become_vc013_findings() {
        let dir = tree(&[(
            "crates/stats/src/lib.rs",
            "// vc-lint: allow(VC009, reason = \"nothing here uses a hash map\")\n\
             pub struct S;\n",
        )]);
        let r = run(&dir);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].code, "VC013");
        assert_eq!(r.findings[0].line, 1);
        assert_eq!(r.suppressed, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_pragmas_become_vc014_findings() {
        let dir = tree(&[(
            "crates/stats/src/lib.rs",
            "// vc-lint: allow(VC009)\nuse std::collections::HashMap;\n",
        )]);
        let r = run(&dir);
        let codes: Vec<&str> = r.findings.iter().map(|f| f.code).collect();
        // The pragma is malformed, so it suppresses nothing: the VC009
        // finding survives alongside the VC014 (which sorts first — it
        // anchors at the pragma's own line).
        assert_eq!(codes, vec!["VC014", "VC009"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_pragma_cannot_silence_suppression_hygiene_codes() {
        let dir = tree(&[(
            "crates/stats/src/lib.rs",
            "// vc-lint: allow(VC013, reason = \"trying to silence the silencer\")\n\
             pub struct S;\n",
        )]);
        let r = run(&dir);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].code, "VC013");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_is_sorted_and_counts_files() {
        let dir = tree(&[
            ("crates/stats/src/b.rs", "use std::collections::HashMap;\n"),
            ("crates/stats/src/a.rs", "use std::collections::HashSet;\n"),
        ]);
        let r = run(&dir);
        assert_eq!(r.files_scanned, 2);
        let files: Vec<&str> = r.findings.iter().map(|f| f.file.as_str()).collect();
        assert_eq!(
            files,
            vec!["crates/stats/src/a.rs", "crates/stats/src/b.rs"]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
