//! A token-level lexer for (a useful subset of) Rust surface syntax.
//!
//! The linter's rules match *token sequences*, never raw substrings, so a
//! forbidden name inside a string literal or a comment can never fire a
//! finding, and every finding carries the exact `line:col` of the token
//! that triggered it. The lexer understands exactly the constructs that
//! make substring scanning unsound:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, including `/**`/`/*!` doc forms);
//! - string literals with escapes, raw strings `r"…"`/`r#"…"#` (any hash
//!   count), byte strings `b"…"`, raw byte strings `br#"…"#`;
//! - char literals (with escapes), byte literals `b'…'`, and the
//!   lifetime-vs-char-literal ambiguity (`'a` in `&'a str` is a lifetime,
//!   `'a'` is a char);
//! - raw identifiers `r#match` (lexed as identifiers, not raw strings);
//! - numeric literals including underscore grouping, `0x`/`0o`/`0b`
//!   prefixes, float syntax and type suffixes (`0x9E37_79B9`, `1.5e-3`,
//!   `42u64` are each one token; `0..n` is a number and two dots).
//!
//! Everything else is an identifier ([`TokKind::Ident`], keywords
//! included) or a single-byte punctuation token ([`TokKind::Punct`]).
//! That is deliberately *not* a full Rust lexer — no token trees, no
//! float-exponent edge cases beyond the common forms — but it is exact on
//! the boundary that matters for linting: code vs. comment vs. literal.
//!
//! Lines and columns are 1-indexed; columns count bytes, which matches
//! editors for the ASCII sources this workspace contains.

/// The kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `as`, `struct`, `r#match`).
    Ident,
    /// A lifetime (`'a`, `'static`) — the tick and its identifier.
    Lifetime,
    /// A numeric literal (`42`, `0x9E37_79B9`, `1.5e-3`, `7u64`).
    Num,
    /// A string literal `"…"` (escapes handled).
    Str,
    /// A raw string literal `r"…"` / `r#"…"#` (any hash count).
    RawStr,
    /// A byte-string literal `b"…"`.
    ByteStr,
    /// A raw byte-string literal `br"…"` / `br#"…"#`.
    RawByteStr,
    /// A char literal `'x'` / `'\n'`.
    Char,
    /// A byte literal `b'x'`.
    Byte,
    /// A line comment (`//…`, `///…`, `//!…`), newline excluded.
    LineComment,
    /// A block comment `/* … */`, nesting handled.
    BlockComment,
    /// A single punctuation byte (`.`, `:`, `!`, `{`, …).
    Punct,
}

impl TokKind {
    /// True for the two comment kinds.
    pub fn is_comment(self) -> bool {
        matches!(self, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// One lexed token: kind plus byte span plus 1-indexed position.
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive).
    pub end: usize,
    /// 1-indexed line of `start`.
    pub line: u32,
    /// 1-indexed byte column of `start` within its line.
    pub col: u32,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into tokens. Never fails: unterminated literals or
/// comments extend to end-of-input, and bytes the lexer does not model
/// (e.g. non-ASCII outside literals) become single [`TokKind::Punct`]
/// tokens. Whitespace is skipped and carries no tokens.
pub fn lex(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    // Advances `line`/`col` over `bytes[from..to]`.
    let advance = |line: &mut u32, col: &mut u32, from: usize, to: usize| {
        for &b in &bytes[from..to] {
            if b == b'\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        let (start_line, start_col) = (line, col);
        let start = i;

        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                advance(&mut line, &mut col, i, i + 1);
                i += 1;
                continue;
            }
            b'/' if next == Some(b'/') => {
                i += 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                TokKind::LineComment
            }
            b'/' if next == Some(b'*') => {
                i += 2;
                let mut depth = 1u32;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                TokKind::BlockComment
            }
            b'r' | b'b' => {
                // Possible raw/byte literal prefixes; fall back to ident.
                let (body, byte_prefixed) = if b == b'b' && next == Some(b'r') {
                    (i + 2, true)
                } else if b == b'r' {
                    (i + 1, false)
                } else {
                    (i + 1, true) // b"…" / b'…' / plain ident starting with b
                };
                if b == b'b' && next == Some(b'"') {
                    i = scan_string(bytes, i + 2);
                    TokKind::ByteStr
                } else if b == b'b' && next == Some(b'\'') {
                    i = scan_char_body(bytes, i + 2);
                    TokKind::Byte
                } else if (b == b'r' || (b == b'b' && next == Some(b'r')))
                    && raw_string_hashes(bytes, body).is_some()
                {
                    // `r"…"`, `r#"…"#`, `br"…"`, `br##"…"##` — but NOT raw
                    // identifiers (`r#match`): those have no quote after
                    // the hashes and fall through to the ident arm below.
                    let hashes = raw_string_hashes(bytes, body).unwrap_or(0);
                    i = scan_raw_string(bytes, body + hashes + 1, hashes);
                    if byte_prefixed && b == b'b' {
                        TokKind::RawByteStr
                    } else {
                        TokKind::RawStr
                    }
                } else {
                    i += 1;
                    // Raw identifier: swallow `#` so `r#match` is one token.
                    if b == b'r' && next == Some(b'#') {
                        i += 1;
                    }
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    TokKind::Ident
                }
            }
            b'"' => {
                i = scan_string(bytes, i + 1);
                TokKind::Str
            }
            b'\'' => {
                // Lifetime iff an identifier follows and the run is not
                // closed by another tick (`'a` vs `'a'`).
                let is_lifetime = next.is_some_and(is_ident_start) && {
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_continue(bytes[j]) {
                        j += 1;
                    }
                    bytes.get(j) != Some(&b'\'')
                };
                if is_lifetime {
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    TokKind::Lifetime
                } else {
                    i = scan_char_body(bytes, i + 1);
                    TokKind::Char
                }
            }
            b'0'..=b'9' => {
                i = scan_number(bytes, i);
                TokKind::Num
            }
            _ if is_ident_start(b) => {
                i += 1;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                TokKind::Ident
            }
            _ => {
                i += 1;
                TokKind::Punct
            }
        };

        advance(&mut line, &mut col, start, i);
        toks.push(Tok {
            kind,
            start,
            end: i,
            line: start_line,
            col: start_col,
        });
    }
    toks
}

/// If `bytes[at..]` starts a raw-string body (`#…#"` or `"`), returns the
/// hash count; `None` means this is not a raw string (e.g. a raw ident).
fn raw_string_hashes(bytes: &[u8], at: usize) -> Option<usize> {
    let mut hashes = 0;
    let mut j = at;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

/// Scans a (byte-)string body starting just after the opening quote;
/// returns the offset one past the closing quote (or EOF).
fn scan_string(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i.min(bytes.len())
}

/// Scans a raw (byte-)string body starting just after the opening quote;
/// the literal closes at `"` followed by `hashes` hash signs.
fn scan_raw_string(bytes: &[u8], mut i: usize, hashes: usize) -> usize {
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let closes = (0..hashes).all(|h| bytes.get(i + 1 + h) == Some(&b'#'));
            if closes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Scans a char/byte-literal body starting just after the opening tick;
/// returns the offset one past the closing tick (or EOF).
fn scan_char_body(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i.min(bytes.len())
}

/// Scans a numeric literal starting at a digit; handles `0x`/`0o`/`0b`
/// prefixes, underscore grouping, simple float forms (`1.5`, `1e9`,
/// `1.5e-3`) and type suffixes (`7u64`). `0..n` stops before the dots.
fn scan_number(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    let radix_prefixed = bytes[i] == b'0'
        && matches!(
            bytes.get(i + 1),
            Some(b'x') | Some(b'X') | Some(b'o') | Some(b'O') | Some(b'b') | Some(b'B')
        );
    if radix_prefixed {
        i += 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return i;
    }
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        i += 1;
    }
    // Fractional part: a dot followed by a digit (not `..`, not `.method()`).
    if bytes.get(i) == Some(&b'.')
        && bytes
            .get(i + 1)
            .copied()
            .is_some_and(|d| d.is_ascii_digit())
    {
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
    }
    // Exponent: e/E, optional sign, at least one digit.
    if matches!(bytes.get(i), Some(b'e') | Some(b'E')) {
        let mut j = i + 1;
        if matches!(bytes.get(j), Some(b'+') | Some(b'-')) {
            j += 1;
        }
        if bytes.get(j).copied().is_some_and(|d| d.is_ascii_digit()) {
            i = j;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (`u64`, `f32`, `usize`).
    while i < bytes.len() && is_ident_continue(bytes[i]) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, src[t.start..t.end].to_string()))
            .collect()
    }

    fn code_idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| src[t.start..t.end].to_string())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r#"
// a comment mentioning .unwrap()
/* block with panic! inside */
let s = "contains .unwrap() too";
let real = x.unwrap();
"#;
        let idents = code_idents(src);
        assert_eq!(idents.iter().filter(|i| *i == "unwrap").count(), 1);
        assert!(!idents.contains(&"panic".to_string()));
    }

    #[test]
    fn raw_strings_with_hash_delimiters() {
        let src = r##"let s = r#"panic!("inside")"#; let t = y.unwrap();"##;
        let toks = texts(src);
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokKind::RawStr && s.contains("panic!")));
        let idents = code_idents(src);
        assert!(!idents.contains(&"panic".to_string()));
        assert!(idents.contains(&"unwrap".to_string()));
    }

    #[test]
    fn multi_hash_raw_strings_close_on_the_full_fence() {
        let src = r###"let s = r##"one "# inside"##; let u = q.unwrap();"###;
        let idents = code_idents(src);
        assert!(idents.contains(&"unwrap".to_string()));
        assert_eq!(
            texts(src)
                .iter()
                .filter(|(k, _)| *k == TokKind::RawStr)
                .count(),
            1
        );
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner panic! */ still comment */ x.unwrap()";
        let toks = texts(src);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks[0].1.contains("inner"));
        assert!(toks[0].1.contains("still comment"));
        let idents = code_idents(src);
        assert_eq!(idents, vec!["x", "unwrap"]);
    }

    #[test]
    fn byte_strings_and_byte_literals() {
        let src = r#"let a = b"panic!"; let c = b'x'; let d = b'\''; keep.unwrap()"#;
        let toks = texts(src);
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokKind::ByteStr && s.contains("panic!")));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Byte).count(), 2);
        assert!(code_idents(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_byte_strings() {
        let src = r##"let a = br#"HashMap"#; let b = br"HashSet";"##;
        let toks = texts(src);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokKind::RawByteStr)
                .count(),
            2
        );
        assert!(!code_idents(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x } let c = 'y'; let e = '\\n';";
        let toks = texts(src);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            3
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn raw_identifiers_are_identifiers_not_raw_strings() {
        let src = "let r#match = 1; let s = r#\"text\"#;";
        let toks = texts(src);
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "r#match"));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::RawStr).count(),
            1
        );
    }

    #[test]
    fn inner_doc_comments_are_comments() {
        let src = "//! crate docs mentioning HashMap\n/// item docs with panic!\npub fn f() {}";
        let comments: Vec<_> = texts(src)
            .into_iter()
            .filter(|(k, _)| k.is_comment())
            .collect();
        assert_eq!(comments.len(), 2);
        assert!(!code_idents(src).contains(&"HashMap".to_string()));
        assert!(!code_idents(src).contains(&"panic".to_string()));
    }

    #[test]
    fn numbers_lex_as_single_tokens() {
        let src = "let a = 0x9E37_79B9_7F4A_7C15; let b = 1.5e-3; let c = 42u64; for i in 0..n {}";
        let nums: Vec<_> = texts(src)
            .into_iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(nums, vec!["0x9E37_79B9_7F4A_7C15", "1.5e-3", "42u64", "0"]);
    }

    #[test]
    fn method_calls_on_numbers_keep_the_dot() {
        let src = "let m = 1.max(2);";
        let toks = texts(src);
        assert!(toks.iter().any(|(k, s)| *k == TokKind::Num && s == "1"));
        assert!(toks.iter().any(|(k, s)| *k == TokKind::Ident && s == "max"));
    }

    #[test]
    fn positions_are_one_indexed_lines_and_byte_columns() {
        let src = "let a = 1;\n    b.unwrap();\n";
        let toks = lex(src);
        let unwrap = toks
            .iter()
            .find(|t| &src[t.start..t.end] == "unwrap")
            .expect("unwrap token");
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
    }

    #[test]
    fn unterminated_literals_extend_to_eof_without_panicking() {
        for src in ["\"open", "r#\"open", "'\\", "/* open /* nested", "b\"open"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()));
        }
    }
}
