//! The rule registry: every architectural invariant as a [`Rule`] with a
//! stable code.
//!
//! Codes are append-only and never reused: `VC001`–`VC008` are the eight
//! rules the original `xtask` linter enforced (ported token-exact),
//! `VC009`–`VC012` are the determinism rules added with this crate, and
//! `VC013`/`VC014` are the suppression-hygiene findings emitted by the
//! driver itself (see [`crate::run`]). DESIGN.md §13 is the catalog of
//! record; the README maps each code to its invariant and origin PR.

use crate::report::Finding;
use crate::source::{SourceFile, Workspace};

/// Identity card of a rule: stable code, human name, one-line invariant.
pub struct RuleInfo {
    /// Stable code (`VC001`…), append-only, never reused.
    pub code: &'static str,
    /// Human-readable rule name, used in rendered findings.
    pub name: &'static str,
    /// One-line statement of the invariant the rule protects.
    pub summary: &'static str,
}

/// A lint rule: an invariant checked against the loaded workspace.
pub trait Rule {
    /// The rule's identity card.
    fn info(&self) -> &'static RuleInfo;
    /// Appends findings for every violation in `ws`.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Crates whose non-test `src/` code must be panic-free (VC001).
const PANIC_FREE_CRATES: &[&str] = &[
    "crates/model",
    "crates/adversary",
    "crates/audit",
    "crates/engine",
    "crates/trace",
    "crates/faults",
    "crates/fleet",
    "crates/ident",
    "crates/lint",
    "crates/json",
    "crates/serve",
];

/// Crates whose root must carry `#![deny(missing_docs)]` (VC002).
const MISSING_DOCS_CRATES: &[&str] = &[
    "crates/model",
    "crates/graph",
    "crates/audit",
    "crates/engine",
    "crates/trace",
    "crates/faults",
    "crates/fleet",
    "crates/ident",
    "crates/lint",
    "crates/json",
    "crates/serve",
];

/// The only file allowed to read the wall clock directly (VC006).
const CLOCK_ALLOWLIST: &[&str] = &["crates/trace/src/time.rs"];

/// The only file allowed to sleep or wait on wall-clock time (VC015):
/// the fleet supervisor's poll/backoff loop. Everywhere else a sleep is
/// either a hidden scheduling dependency (library code) or a flakiness
/// seed (tests).
const SLEEP_ALLOWLIST: &[&str] = &["crates/fleet/src/supervisor.rs"];

/// Call idents VC015 hunts for: the std blocking-wait family.
const SLEEP_IDENTS: &[&str] = &["sleep", "sleep_ms", "sleep_until", "park_timeout"];

/// The only directory allowed to call `catch_unwind` (VC007).
const CATCH_UNWIND_ALLOWED_DIR: &str = "crates/engine/src";

/// Places allowed to contain identity/splitmix hashing code (VC008):
/// `vc-ident` itself, plus the pre-existing splitmix *stream* generators
/// (random tape, fault tape, adversary coin flips) that share the mixing
/// constants but never mint identities.
const IDENTITY_ALLOWED_DIR: &str = "crates/ident/src";
const IDENTITY_ALLOWED_FILES: &[&str] = &[
    "crates/faults/src/splitmix.rs",
    "crates/model/src/randomness.rs",
    "crates/adversary/src/hidden_leaf.rs",
];

/// Identifier spelling (normalized: lowercased, underscores stripped)
/// that marks an ad-hoc identity helper (VC008).
const IDENTITY_IDENT: &str = "sweepfingerprint";

/// Splitmix64 mixing constants (normalized numeric-literal spellings)
/// whose appearance outside `vc-ident` marks a hand-rolled digest
/// (VC008).
const IDENTITY_CONSTS: &[&str] = &[
    "0x9e3779b97f4a7c15",
    "0xbf58476d1ce4e5b9",
    "0x94d049bb133111eb",
];

/// Paper anchors accepted as benchmark provenance (VC004).
const PROVENANCE_ANCHORS: &[&str] = &["Table", "Figure", "Example", "Observation", "Proposition"];

/// Crates that feed deterministic merged results (VC009): a hashed
/// collection anywhere in them is iteration-order nondeterminism waiting
/// to reach a merge. `crates/bench` is covered by the older VC003;
/// `crates/model`'s hot path by VC005.
const MERGE_TAINTED_CRATES: &[&str] = &[
    "crates/engine",
    "crates/trace",
    "crates/ident",
    "crates/faults",
    "crates/stats",
    "crates/serve",
];

/// Files inside [`MERGE_TAINTED_CRATES`] exempt from VC009. Empty today:
/// prefer an inline pragma with a reason so the justification lives next
/// to the code; reserve this list for generated files that cannot carry
/// comments.
const MERGE_TAINT_FILE_ALLOWLIST: &[&str] = &[];

/// Struct fields allowed to be `f64` in engine/trace structs (VC010):
/// wall-clock throughput, explicitly quarantined from merged counts.
const FLOAT_FIELD_ALLOWLIST: &[&str] = &["starts_per_sec", "queries_per_sec"];

/// Directories whose structs VC010 scans.
const FLOAT_SCAN_DIRS: &[&str] = &["crates/engine/src", "crates/trace/src", "crates/serve/src"];

/// The sanctioned environment-access sites (VC011): `Engine::from_env`
/// (the engine crate root) and the `xtask` driver.
const ENV_ALLOWED_FILE: &str = "crates/engine/src/lib.rs";
const ENV_ALLOWED_DIR: &str = "crates/xtask";

/// Merge-path files VC012 scans for truncating casts: the engine (chunk
/// merge, splice, checkpoint decode), the mergeable metrics/histograms,
/// the binary instance-store decoder (untrusted on-disk length fields),
/// and the JSON parser every checkpoint/partial decode flows through.
const CAST_SCAN_DIR: &str = "crates/engine/src";
const CAST_SCAN_FILES: &[&str] = &[
    "crates/trace/src/metrics.rs",
    "crates/trace/src/hist.rs",
    "crates/graph/src/store.rs",
    "crates/json/src/lib.rs",
];

/// Cast targets that can silently drop counter bits (VC012). `usize` and
/// `isize` are included: they are 32-bit on some targets, and merged
/// counters are `u64` by contract.
const NARROW_CAST_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// True when `rel` lies under directory `dir` (both `/`-separated).
fn under(rel: &str, dir: &str) -> bool {
    rel.len() > dir.len() && rel.starts_with(dir) && rel.as_bytes()[dir.len()] == b'/'
}

/// A token pattern element: an identifier with this exact spelling, or a
/// single punctuation byte.
enum Pat {
    I(&'static str),
    P(u8),
}

/// True when the filtered token positions `idx[k..]` start with `pat`.
fn matches_at(f: &SourceFile, idx: &[usize], k: usize, pat: &[Pat]) -> bool {
    pat.iter().enumerate().all(|(o, p)| {
        idx.get(k + o).is_some_and(|&ti| match p {
            Pat::I(name) => f.is_ident(ti, name),
            Pat::P(b) => f.is_punct(ti, *b),
        })
    })
}

/// Builds a finding anchored at token `ti` of `f`.
fn finding_at(f: &SourceFile, ti: usize, info: &'static RuleInfo, message: String) -> Finding {
    Finding {
        file: f.rel.clone(),
        line: f.toks[ti].line,
        col: f.toks[ti].col,
        code: info.code,
        rule: info.name,
        message,
    }
}

/// Builds a finding at `line:col` of `f` (for file-level findings).
fn finding_pos(f: &str, line: u32, col: u32, info: &'static RuleInfo, message: String) -> Finding {
    Finding {
        file: f.to_string(),
        line,
        col,
        code: info.code,
        rule: info.name,
        message,
    }
}

/// Lowercases and strips underscores, so `SweepFingerprint`,
/// `sweep_fingerprint` and `0x9E37_79B9_7F4A_7C15` all normalize into
/// their canonical spellings.
fn normalize(s: &str) -> String {
    s.to_ascii_lowercase()
        .chars()
        .filter(|&c| c != '_')
        .collect()
}

// ---------------------------------------------------------------------------
// VC001 no-panic-paths
// ---------------------------------------------------------------------------

/// VC001: no panic paths in library code.
pub struct NoPanicPaths;

/// Info for [`NoPanicPaths`].
pub static VC001: RuleInfo = RuleInfo {
    code: "VC001",
    name: "no-panic-paths",
    summary: "non-test code in core crates must return errors, never abort",
};

impl Rule for NoPanicPaths {
    fn info(&self) -> &'static RuleInfo {
        &VC001
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        const PATTERNS: &[(&str, &[Pat])] = &[
            (
                ".unwrap()",
                &[Pat::P(b'.'), Pat::I("unwrap"), Pat::P(b'('), Pat::P(b')')],
            ),
            (".expect(", &[Pat::P(b'.'), Pat::I("expect"), Pat::P(b'(')]),
            ("panic!", &[Pat::I("panic"), Pat::P(b'!')]),
            (
                "unreachable!(",
                &[Pat::I("unreachable"), Pat::P(b'!'), Pat::P(b'(')],
            ),
            ("todo!(", &[Pat::I("todo"), Pat::P(b'!'), Pat::P(b'(')]),
            (
                "unimplemented!(",
                &[Pat::I("unimplemented"), Pat::P(b'!'), Pat::P(b'(')],
            ),
        ];
        for f in &ws.files {
            if !PANIC_FREE_CRATES
                .iter()
                .any(|k| under(&f.rel, &format!("{k}/src")))
            {
                continue;
            }
            let idx = f.code_indices(false);
            for k in 0..idx.len() {
                for (shown, pat) in PATTERNS {
                    if matches_at(f, &idx, k, pat) {
                        out.push(finding_at(
                            f,
                            idx[k],
                            &VC001,
                            format!(
                                "`{shown}` in non-test code; return a QueryError/GraphError instead"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// VC002 deny-missing-docs
// ---------------------------------------------------------------------------

/// VC002: documentation is mandatory in core crates.
pub struct DenyMissingDocs;

/// Info for [`DenyMissingDocs`].
pub static VC002: RuleInfo = RuleInfo {
    code: "VC002",
    name: "deny-missing-docs",
    summary: "core crate roots must declare #![deny(missing_docs)]",
};

impl Rule for DenyMissingDocs {
    fn info(&self) -> &'static RuleInfo {
        &VC002
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for krate in MISSING_DOCS_CRATES {
            // A crate absent from this tree is not a finding (fixture
            // trees and partial checkouts); an existing crate whose root
            // lacks the attribute is.
            if !ws.root.join(krate).is_dir() {
                continue;
            }
            let rel = format!("{krate}/src/lib.rs");
            let Some(f) = ws.file(&rel) else {
                out.push(finding_pos(
                    &rel,
                    1,
                    1,
                    &VC002,
                    "crate root missing or unreadable; it must declare `#![deny(missing_docs)]`"
                        .to_string(),
                ));
                continue;
            };
            if !has_deny_missing_docs(f) {
                out.push(finding_pos(
                    &rel,
                    1,
                    1,
                    &VC002,
                    "crate must declare `#![deny(missing_docs)]`".to_string(),
                ));
            }
        }
    }
}

/// True when the file contains an inner `#![deny(…missing_docs…)]`.
fn has_deny_missing_docs(f: &SourceFile) -> bool {
    let idx = f.code_indices(true);
    for k in 0..idx.len() {
        let prefix = [
            Pat::P(b'#'),
            Pat::P(b'!'),
            Pat::P(b'['),
            Pat::I("deny"),
            Pat::P(b'('),
        ];
        if !matches_at(f, &idx, k, &prefix) {
            continue;
        }
        let mut j = k + 5;
        let mut named = false;
        while j < idx.len() && !f.is_punct(idx[j], b')') {
            if f.is_ident(idx[j], "missing_docs") {
                named = true;
            }
            j += 1;
        }
        if named
            && f.is_punct(idx[j], b')')
            && f.is_punct(*idx.get(j + 1).unwrap_or(&usize::MAX), b']')
        {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// VC003 ordered-collections-only
// ---------------------------------------------------------------------------

/// VC003: deterministic figure/table paths in `crates/bench`.
pub struct OrderedCollectionsOnly;

/// Info for [`OrderedCollectionsOnly`].
pub static VC003: RuleInfo = RuleInfo {
    code: "VC003",
    name: "ordered-collections-only",
    summary: "crates/bench must not use hashed collections: iteration order feeds figures",
};

impl Rule for OrderedCollectionsOnly {
    fn info(&self) -> &'static RuleInfo {
        &VC003
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            if !under(&f.rel, "crates/bench/src") && !under(&f.rel, "crates/bench/benches") {
                continue;
            }
            for (ti, name) in hashed_collection_idents(f, false) {
                out.push(finding_at(
                    f,
                    ti,
                    &VC003,
                    format!(
                        "`{name}` in a figure/table code path; use BTreeMap/BTreeSet \
                         so iteration order is deterministic"
                    ),
                ));
            }
        }
    }
}

/// Positions of `HashMap`/`HashSet` identifier tokens.
fn hashed_collection_idents(f: &SourceFile, include_tests: bool) -> Vec<(usize, &'static str)> {
    let mut hits = Vec::new();
    for ti in f.code_indices(include_tests) {
        for name in ["HashMap", "HashSet"] {
            if f.is_ident(ti, name) {
                hits.push((ti, name));
            }
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// VC004 bench-provenance
// ---------------------------------------------------------------------------

/// VC004: benchmarks declare the paper artifact they reproduce.
pub struct BenchProvenance;

/// Info for [`BenchProvenance`].
pub static VC004: RuleInfo = RuleInfo {
    code: "VC004",
    name: "bench-provenance",
    summary: "every bench header must cite a Table/Figure/Example/Observation/Proposition",
};

impl Rule for BenchProvenance {
    fn info(&self) -> &'static RuleInfo {
        &VC004
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            if !under(&f.rel, "crates/bench/benches") {
                continue;
            }
            // The header: comment tokens before the first code token.
            let cited = f
                .toks
                .iter()
                .enumerate()
                .take_while(|(_, t)| t.kind.is_comment())
                .any(|(i, _)| {
                    let text = f.tok_text(i);
                    PROVENANCE_ANCHORS.iter().any(|a| text.contains(a))
                });
            if !cited {
                out.push(finding_pos(
                    &f.rel,
                    1,
                    1,
                    &VC004,
                    format!(
                        "benchmark header must cite its paper artifact (one of: {})",
                        PROVENANCE_ANCHORS.join(", ")
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// VC005 flat-oracle-state
// ---------------------------------------------------------------------------

/// VC005: the execution hot path stays flat.
pub struct FlatOracleState;

/// Info for [`FlatOracleState`].
pub static VC005: RuleInfo = RuleInfo {
    code: "VC005",
    name: "flat-oracle-state",
    summary: "no hashed collections in the oracle hot path, tests included",
};

impl Rule for FlatOracleState {
    fn info(&self) -> &'static RuleInfo {
        &VC005
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // Deliberately scans test code too: a HashMap-shaped test fixture
        // is usually the first step of a HashMap-shaped regression.
        let Some(f) = ws.file("crates/model/src/oracle.rs") else {
            return;
        };
        for (ti, name) in hashed_collection_idents(f, true) {
            out.push(finding_at(
                f,
                ti,
                &VC005,
                format!(
                    "`{name}` in the execution hot path; per-node state belongs in \
                     the epoch-stamped ExecScratch buffers"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// VC006 no-hidden-clocks
// ---------------------------------------------------------------------------

/// VC006: no hidden clocks.
pub struct NoHiddenClocks;

/// Info for [`NoHiddenClocks`].
pub static VC006: RuleInfo = RuleInfo {
    code: "VC006",
    name: "no-hidden-clocks",
    summary: "Instant::now only in the sanctioned Stopwatch module",
};

impl Rule for NoHiddenClocks {
    fn info(&self) -> &'static RuleInfo {
        &VC006
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            if CLOCK_ALLOWLIST.contains(&f.rel.as_str()) {
                continue;
            }
            // Test code is scanned too: timing assertions belong on
            // Stopwatch as well, so its monotonicity guarantees hold
            // everywhere.
            let idx = f.code_indices(true);
            for k in 0..idx.len() {
                let pat = [Pat::I("Instant"), Pat::P(b':'), Pat::P(b':'), Pat::I("now")];
                if matches_at(f, &idx, k, &pat) {
                    out.push(finding_at(
                        f,
                        idx[k],
                        &VC006,
                        "`Instant::now` outside crates/trace/src/time.rs; \
                         use vc_trace::time::Stopwatch"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// VC007 centralized-panic-isolation
// ---------------------------------------------------------------------------

/// VC007: panic isolation stays centralized.
pub struct CentralizedPanicIsolation;

/// Info for [`CentralizedPanicIsolation`].
pub static VC007: RuleInfo = RuleInfo {
    code: "VC007",
    name: "centralized-panic-isolation",
    summary: "catch_unwind only in the engine's chunk runner",
};

impl Rule for CentralizedPanicIsolation {
    fn info(&self) -> &'static RuleInfo {
        &VC007
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            if under(&f.rel, CATCH_UNWIND_ALLOWED_DIR) {
                continue;
            }
            // Test code is scanned too: a test that swallows panics hides
            // exactly the failures the engine ledger is meant to surface.
            for ti in f.code_indices(true) {
                if f.is_ident(ti, "catch_unwind") {
                    out.push(finding_at(
                        f,
                        ti,
                        &VC007,
                        "`catch_unwind` outside crates/engine/src; panic isolation \
                         belongs to the engine's chunk runner"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// VC008 content-addressed-identity
// ---------------------------------------------------------------------------

/// VC008: identity hashing stays in `vc-ident`.
pub struct ContentAddressedIdentity;

/// Info for [`ContentAddressedIdentity`].
pub static VC008: RuleInfo = RuleInfo {
    code: "VC008",
    name: "content-addressed-identity",
    summary: "no ad-hoc fingerprint helpers or splitmix constants outside vc-ident",
};

impl Rule for ContentAddressedIdentity {
    fn info(&self) -> &'static RuleInfo {
        &VC008
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            if under(&f.rel, IDENTITY_ALLOWED_DIR)
                || IDENTITY_ALLOWED_FILES.contains(&f.rel.as_str())
            {
                continue;
            }
            // Test code is scanned too: a test-local digest drifts from
            // `vc-ident` just as silently as a production one.
            for ti in f.code_indices(true) {
                let norm = normalize(f.tok_text(ti));
                let hit = match f.toks[ti].kind {
                    crate::lexer::TokKind::Ident => norm == IDENTITY_IDENT,
                    crate::lexer::TokKind::Num => IDENTITY_CONSTS.contains(&norm.as_str()),
                    _ => false,
                };
                if hit {
                    out.push(finding_at(
                        f,
                        ti,
                        &VC008,
                        format!(
                            "`{norm}` outside crates/ident; fold content through \
                             vc_ident::IdHasher instead of hand-rolling a digest"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// VC009 merge-tainted-collections
// ---------------------------------------------------------------------------

/// VC009: no nondeterministic iteration in crates that feed merged
/// results.
pub struct MergeTaintedCollections;

/// Info for [`MergeTaintedCollections`].
pub static VC009: RuleInfo = RuleInfo {
    code: "VC009",
    name: "merge-tainted-collections",
    summary: "no hashed collections in crates whose output reaches deterministic merges",
};

impl Rule for MergeTaintedCollections {
    fn info(&self) -> &'static RuleInfo {
        &VC009
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            if !MERGE_TAINTED_CRATES.iter().any(|k| under(&f.rel, k)) {
                continue;
            }
            if MERGE_TAINT_FILE_ALLOWLIST.contains(&f.rel.as_str()) {
                continue;
            }
            // Tests included: byte-identical-merge suites that iterate a
            // hashed collection can pass locally and flake in CI.
            for (ti, name) in hashed_collection_idents(f, true) {
                out.push(finding_at(
                    f,
                    ti,
                    &VC009,
                    format!(
                        "`{name}` in a crate that feeds deterministic merged results; \
                         iteration order is seed-dependent — use BTreeMap/BTreeSet, \
                         or suppress with `// vc-lint: allow(VC009, reason = \
                         \"…\")` if iteration order is provably never observed"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// VC010 no-floats-in-merged-counts
// ---------------------------------------------------------------------------

/// VC010: merged count structs stay integral.
pub struct NoFloatsInMergedCounts;

/// Info for [`NoFloatsInMergedCounts`].
pub static VC010: RuleInfo = RuleInfo {
    code: "VC010",
    name: "no-floats-in-merged-counts",
    summary: "no f32/f64 struct fields in engine/trace except allowlisted throughput",
};

impl Rule for NoFloatsInMergedCounts {
    fn info(&self) -> &'static RuleInfo {
        &VC010
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            if !FLOAT_SCAN_DIRS.iter().any(|d| under(&f.rel, d)) {
                continue;
            }
            let idx = f.code_indices(false);
            let mut k = 0;
            while k < idx.len() {
                if !f.is_ident(idx[k], "struct") {
                    k += 1;
                    continue;
                }
                let (body, next) = struct_body(f, &idx, k);
                for &p in &body {
                    let ti = idx[p];
                    let float = ["f32", "f64"].iter().find(|t| f.is_ident(ti, t));
                    let Some(float) = float else { continue };
                    let field = field_name_before(f, &idx, p);
                    if FLOAT_FIELD_ALLOWLIST.contains(&field.as_str()) {
                        continue;
                    }
                    let shown = if field.is_empty() {
                        "a tuple field".to_string()
                    } else {
                        format!("field `{field}`")
                    };
                    out.push(finding_at(
                        f,
                        ti,
                        &VC010,
                        format!(
                            "{shown} is `{float}` in an engine/trace struct; merged counts \
                             must stay integral (floats round under reordered merges) — use \
                             u64, or allowlist the field if it is wall-clock throughput"
                        ),
                    ));
                }
                k = next;
            }
        }
    }
}

/// Given `idx[k]` on a `struct` keyword, returns the positions (into
/// `idx`) of the tokens inside the struct's field list — the `{…}` or
/// tuple `(…)` body — plus the position to resume scanning from. Unit
/// structs return an empty body. Generic parameters, bounds and `where`
/// clauses sit before the body and are excluded.
fn struct_body(f: &SourceFile, idx: &[usize], k: usize) -> (Vec<usize>, usize) {
    let mut j = k + 1;
    while j < idx.len() {
        if f.is_punct(idx[j], b';') {
            return (Vec::new(), j + 1);
        }
        if f.is_punct(idx[j], b'{') || f.is_punct(idx[j], b'(') {
            let (open, close) = if f.is_punct(idx[j], b'{') {
                (b'{', b'}')
            } else {
                (b'(', b')')
            };
            let mut depth = 0usize;
            let start = j;
            while j < idx.len() {
                if f.is_punct(idx[j], open) {
                    depth += 1;
                } else if f.is_punct(idx[j], close) {
                    depth -= 1;
                    if depth == 0 {
                        return (((start + 1)..j).collect(), j + 1);
                    }
                }
                j += 1;
            }
            return (((start + 1)..j).collect(), j);
        }
        j += 1;
    }
    (Vec::new(), j)
}

/// Walks back from position `p` (into `idx`) to the field name: the
/// identifier directly before the nearest field-separating `:` (path
/// separators `::` are skipped). Empty for tuple fields.
fn field_name_before(f: &SourceFile, idx: &[usize], p: usize) -> String {
    let mut j = p;
    while j > 0 {
        j -= 1;
        if f.is_punct(idx[j], b':') {
            let path_sep = (j > 0 && f.is_punct(idx[j - 1], b':'))
                || f.is_punct(*idx.get(j + 1).unwrap_or(&usize::MAX), b':');
            if path_sep {
                // Skip the other half of `::`.
                if j > 0 && f.is_punct(idx[j - 1], b':') {
                    j -= 1;
                }
                continue;
            }
            if j > 0 && f.toks[idx[j - 1]].kind == crate::lexer::TokKind::Ident {
                return f.tok_text(idx[j - 1]).to_string();
            }
            return String::new();
        }
        // A `,` or the body edge before any `:` means a tuple field.
        if f.is_punct(idx[j], b',') {
            return String::new();
        }
    }
    String::new()
}

// ---------------------------------------------------------------------------
// VC011 centralized-env-access
// ---------------------------------------------------------------------------

/// VC011: environment access stays centralized.
pub struct CentralizedEnvAccess;

/// Info for [`CentralizedEnvAccess`].
pub static VC011: RuleInfo = RuleInfo {
    code: "VC011",
    name: "centralized-env-access",
    summary: "env::var only in Engine::from_env and the xtask driver",
};

impl Rule for CentralizedEnvAccess {
    fn info(&self) -> &'static RuleInfo {
        &VC011
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            if f.rel == ENV_ALLOWED_FILE || under(&f.rel, ENV_ALLOWED_DIR) {
                continue;
            }
            // Tests included: an env read in a test couples its outcome
            // to ambient shell state just as silently.
            let idx = f.code_indices(true);
            for k in 0..idx.len() {
                let pat = [Pat::I("env"), Pat::P(b':'), Pat::P(b':'), Pat::I("var")];
                if matches_at(f, &idx, k, &pat) {
                    out.push(finding_at(
                        f,
                        idx[k],
                        &VC011,
                        "`env::var` outside Engine::from_env and xtask; ambient \
                         configuration must flow through the engine's single entry \
                         point so sweeps stay reproducible from their RunConfig"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// VC012 no-truncating-casts
// ---------------------------------------------------------------------------

/// VC012: no truncating `as` casts in merge paths.
pub struct NoTruncatingCasts;

/// Info for [`NoTruncatingCasts`].
pub static VC012: RuleInfo = RuleInfo {
    code: "VC012",
    name: "no-truncating-casts",
    summary: "no narrowing `as` casts on counters in engine/trace merge paths",
};

impl Rule for NoTruncatingCasts {
    fn info(&self) -> &'static RuleInfo {
        &VC012
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            let in_scope =
                under(&f.rel, CAST_SCAN_DIR) || CAST_SCAN_FILES.contains(&f.rel.as_str());
            if !in_scope {
                continue;
            }
            let idx = f.code_indices(false);
            for k in 0..idx.len() {
                if !f.is_ident(idx[k], "as") {
                    continue;
                }
                let Some(&target_ti) = idx.get(k + 1) else {
                    continue;
                };
                let target = NARROW_CAST_TARGETS
                    .iter()
                    .find(|t| f.is_ident(target_ti, t));
                if let Some(target) = target {
                    out.push(finding_at(
                        f,
                        idx[k],
                        &VC012,
                        format!(
                            "`as {target}` in a merge path can silently truncate a \
                             counter; use `{target}::try_from(…)` and surface the error, \
                             or suppress with a justified `// vc-lint: allow(VC012, \
                             reason = \"…\")` when the value is provably in range"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// VC015 no-stray-sleeps
// ---------------------------------------------------------------------------

/// VC015: blocking waits stay in the fleet supervisor.
pub struct NoStraySleeps;

/// Info for [`NoStraySleeps`].
pub static VC015: RuleInfo = RuleInfo {
    code: "VC015",
    name: "no-stray-sleeps",
    summary: "thread::sleep family only in the vc-fleet supervisor module",
};

impl Rule for NoStraySleeps {
    fn info(&self) -> &'static RuleInfo {
        &VC015
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            if SLEEP_ALLOWLIST.contains(&f.rel.as_str()) {
                continue;
            }
            // Tests included: a sleep in a test is a flakiness seed —
            // poll a condition or drive a scripted backend instead.
            let idx = f.code_indices(true);
            for k in 0..idx.len() {
                let called = SLEEP_IDENTS
                    .iter()
                    .find(|name| matches_at(f, &idx, k, &[Pat::I(name), Pat::P(b'(')]));
                if let Some(name) = called {
                    out.push(finding_at(
                        f,
                        idx[k],
                        &VC015,
                        format!(
                            "`{name}(…)` outside the fleet supervisor; voluntary waits \
                             belong in vc-fleet's poll/backoff loop — elsewhere they \
                             hide scheduling assumptions (or flakiness) the sweep's \
                             determinism contract forbids"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Driver-emitted suppression findings (not rules, but cataloged codes)
// ---------------------------------------------------------------------------

/// Info for the unused-suppression finding emitted by [`crate::run`].
pub static UNUSED_SUPPRESSION: RuleInfo = RuleInfo {
    code: "VC013",
    name: "unused-suppression",
    summary: "a pragma code that suppresses nothing must be removed",
};

/// Info for the malformed-suppression finding emitted by [`crate::run`].
pub static MALFORMED_SUPPRESSION: RuleInfo = RuleInfo {
    code: "VC014",
    name: "malformed-suppression",
    summary: "a vc-lint pragma must parse and carry a non-empty reason",
};

/// Every rule, in code order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicPaths),
        Box::new(DenyMissingDocs),
        Box::new(OrderedCollectionsOnly),
        Box::new(BenchProvenance),
        Box::new(FlatOracleState),
        Box::new(NoHiddenClocks),
        Box::new(CentralizedPanicIsolation),
        Box::new(ContentAddressedIdentity),
        Box::new(MergeTaintedCollections),
        Box::new(NoFloatsInMergedCounts),
        Box::new(CentralizedEnvAccess),
        Box::new(NoTruncatingCasts),
        Box::new(NoStraySleeps),
    ]
}

/// The full code catalog (rules plus driver-emitted codes), for
/// documentation and tooling, in code order. The driver-emitted
/// suppression codes (VC013/VC014) slot in between the registry rules,
/// so the merged list is re-sorted.
pub fn catalog() -> Vec<&'static RuleInfo> {
    let mut infos: Vec<&'static RuleInfo> = registry().iter().map(|r| r.info()).collect();
    infos.push(&UNUSED_SUPPRESSION);
    infos.push(&MALFORMED_SUPPRESSION);
    infos.sort_by_key(|i| i.code);
    infos
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static NEXT: AtomicUsize = AtomicUsize::new(0);

    /// Builds a throwaway workspace on disk and loads it.
    fn ws(files: &[(&str, &str)]) -> (Workspace, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "vc-lint-rules-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        for (rel, text) in files {
            let path = dir.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, text).unwrap();
        }
        (Workspace::load(&dir), dir)
    }

    fn run_rule(rule: &dyn Rule, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        rule.check(ws, &mut out);
        out
    }

    #[test]
    fn oracle_hot_path_rule_fires_on_hash_collections_even_in_tests() {
        let (ws, dir) = ws(&[(
            "crates/model/src/oracle.rs",
            "use std::collections::HashMap;\n#[cfg(test)]\nmod t { use std::collections::HashSet; }\n",
        )]);
        let findings = run_rule(&FlatOracleState, &ws);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.code == "VC005"));
        assert_eq!((findings[0].line, findings[0].col), (1, 23));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_hidden_clocks_rule_fires_outside_the_allowlist() {
        let (ws, dir) = ws(&[
            (
                "crates/engine/src/lib.rs",
                "fn f() { let t = std::time::Instant::now(); }\n",
            ),
            (
                "crates/trace/src/time.rs",
                "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
            ),
        ]);
        let findings = run_rule(&NoHiddenClocks, &ws);
        assert_eq!(findings.len(), 1, "only the non-allowlisted read fires");
        assert_eq!(findings[0].code, "VC006");
        assert_eq!(findings[0].file, "crates/engine/src/lib.rs");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_sleep_rule_fires_everywhere_but_the_supervisor() {
        let (ws, dir) = ws(&[
            (
                "crates/engine/src/lib.rs",
                "fn f() { std::thread::sleep(d); }\n\
                 #[cfg(test)]\nmod t { fn g() { std::thread::sleep(d); } }\n",
            ),
            (
                "crates/fleet/src/supervisor.rs",
                "fn p() { std::thread::sleep(d); }\n",
            ),
            (
                "crates/comm/src/lib.rs",
                "fn h(t: &std::thread::Thread) { std::thread::park_timeout(d); let sleepy = 1; }\n",
            ),
        ]);
        let findings = run_rule(&NoStraySleeps, &ws);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.code == "VC015"));
        assert!(
            findings.iter().all(|f| !f.file.starts_with("crates/fleet")),
            "the supervisor is sanctioned"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn centralized_catch_unwind_rule_fires_outside_the_engine() {
        let (ws, dir) = ws(&[
            (
                "crates/faults/src/lib.rs",
                "fn f() { let _ = std::panic::catch_unwind(|| 1); }\n",
            ),
            (
                "crates/engine/src/lib.rs",
                "fn g() { let _ = std::panic::catch_unwind(|| 2); }\n",
            ),
        ]);
        let findings = run_rule(&CentralizedPanicIsolation, &ws);
        assert_eq!(findings.len(), 1, "only the non-engine call fires");
        assert_eq!(findings[0].code, "VC007");
        assert_eq!(findings[0].file, "crates/faults/src/lib.rs");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn content_addressed_identity_rule_fires_outside_vc_ident() {
        // The forbidden spellings are assembled at runtime so this test
        // file itself stays clean under the repo-wide scan.
        let helper = "sweep_".to_string() + "fingerprint";
        let gamma = "0x9E37_79B9_".to_string() + "7F4A_7C15";
        let engine = format!("fn {helper}(x: u64) -> u64 {{\n    x.wrapping_mul({gamma})\n}}\n");
        let allowed = format!("const GAMMA: u64 = {gamma};\n");
        let (ws, dir) = ws(&[
            ("crates/engine/src/checkpoint.rs", engine.as_str()),
            ("crates/ident/src/lib.rs", allowed.as_str()),
            ("crates/model/src/randomness.rs", allowed.as_str()),
        ]);
        let findings = run_rule(&ContentAddressedIdentity, &ws);
        assert_eq!(findings.len(), 2, "helper name + constant, nothing else");
        assert!(findings.iter().all(|f| f.code == "VC008"));
        assert!(findings
            .iter()
            .all(|f| f.file == "crates/engine/src/checkpoint.rs"));
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_taint_rule_covers_the_result_feeding_crates() {
        let (ws, dir) = ws(&[
            (
                "crates/stats/src/lib.rs",
                "use std::collections::HashMap;\n",
            ),
            ("crates/core/src/lib.rs", "use std::collections::HashMap;\n"),
        ]);
        let findings = run_rule(&MergeTaintedCollections, &ws);
        assert_eq!(findings.len(), 1, "vc-core is not merge-tainted");
        assert_eq!(findings[0].code, "VC009");
        assert_eq!(findings[0].file, "crates/stats/src/lib.rs");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn float_fields_fire_unless_allowlisted_throughput() {
        let src = "\
pub struct Counts {
    pub n: u64,
    pub mean_volume: f64,
    pub starts_per_sec: f64,
    pub histogram: Vec<f64>,
}
pub struct Tuple(f32, u64);
pub fn rate(count: f64) -> f64 { count }
";
        let (ws, dir) = ws(&[("crates/trace/src/metrics.rs", src)]);
        let findings = run_rule(&NoFloatsInMergedCounts, &ws);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        // mean_volume, histogram, and the tuple field — not the
        // allowlisted starts_per_sec, and never bare fn signatures.
        assert_eq!(lines, vec![3, 5, 7]);
        assert!(findings[0].message.contains("mean_volume"));
        assert!(findings[2].message.contains("tuple field"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn env_access_rule_spares_the_engine_entry_point_and_xtask() {
        let engine = "pub fn from_env() { let _ = std::env::var(\"VC_THREADS\"); }\n";
        let stray = "pub fn sneak() { let _ = std::env::var(\"VC_SNEAKY\"); }\n";
        let (ws, dir) = ws(&[
            ("crates/engine/src/lib.rs", engine),
            ("crates/xtask/src/main.rs", stray),
            ("crates/trace/src/lib.rs", stray),
            ("tests/some_test.rs", stray),
        ]);
        let findings = run_rule(&CentralizedEnvAccess, &ws);
        let files: Vec<&str> = findings.iter().map(|f| f.file.as_str()).collect();
        assert_eq!(files, vec!["crates/trace/src/lib.rs", "tests/some_test.rs"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncating_casts_fire_only_in_merge_paths_and_non_test_code() {
        let merge = "\
pub fn squash(x: u64) -> u32 { x as u32 }
pub fn widen(x: u32) -> u64 { x as u64 }
#[cfg(test)]
mod t { fn f(x: u64) -> u8 { x as u8 } }
";
        let (ws, dir) = ws(&[
            ("crates/engine/src/lib.rs", merge),
            (
                "crates/model/src/lib.rs",
                "pub fn ok(x: u64) -> u32 { x as u32 }\n",
            ),
        ]);
        let findings = run_rule(&NoTruncatingCasts, &ws);
        assert_eq!(findings.len(), 1, "widening and test casts are fine");
        assert_eq!(findings[0].code, "VC012");
        assert_eq!(findings[0].line, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncating_casts_fire_in_the_binary_store_decoder() {
        // The on-disk length fields of `vc-instance/v1` are untrusted
        // input; narrowing them with `as` instead of `try_from` is exactly
        // the bug class VC012 exists to catch.
        let decode = "pub fn len(x: u64) -> usize { x as usize }\n";
        let (ws, dir) = ws(&[
            ("crates/graph/src/store.rs", decode),
            ("crates/graph/src/graph.rs", decode),
        ]);
        let findings = run_rule(&NoTruncatingCasts, &ws);
        assert_eq!(findings.len(), 1, "only the store decoder is in scope");
        assert_eq!(findings[0].file, "crates/graph/src/store.rs");
        assert_eq!(findings[0].code, "VC012");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_docs_attr_is_found_token_exactly() {
        let with = "#![deny(missing_docs)]\npub fn f() {}\n";
        let without = "#![deny(warnings)]\npub fn f() {}\n";
        let (ws, dir) = ws(&[
            ("crates/model/src/lib.rs", with),
            ("crates/graph/src/lib.rs", without),
        ]);
        let findings = run_rule(&DenyMissingDocs, &ws);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].file, "crates/graph/src/lib.rs");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absent_crates_are_not_missing_docs_findings() {
        let (ws, dir) = ws(&[("crates/model/src/lib.rs", "#![deny(missing_docs)]\n")]);
        let findings = run_rule(&DenyMissingDocs, &ws);
        assert!(findings.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn registry_codes_are_unique_sorted_and_stable() {
        let codes: Vec<&str> = catalog().iter().map(|i| i.code).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(codes, sorted, "codes are unique and in order");
        assert_eq!(codes.first(), Some(&"VC001"));
        assert_eq!(codes.last(), Some(&"VC015"));
    }
}
