//! Findings, deterministic ordering, and the two renderings: human
//! `file:line:col` diagnostics and the `vc-lint-report/v1` JSON document.

use std::fmt;

/// One lint finding with a full span anchor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative, `/`-separated path.
    pub file: String,
    /// 1-indexed line of the triggering token.
    pub line: u32,
    /// 1-indexed byte column of the triggering token.
    pub col: u32,
    /// Stable rule code (`VC001`…).
    pub code: &'static str,
    /// Human rule name (`no-panic-paths`, …).
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} [{}] {}",
            self.file, self.line, self.col, self.code, self.rule, self.message
        )
    }
}

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings, sorted (file, line, code, col, message).
    pub findings: Vec<Finding>,
    /// How many findings were silenced by suppression pragmas.
    pub suppressed: usize,
    /// How many files were scanned.
    pub files_scanned: usize,
}

/// The schema identifier of the JSON rendering.
pub const REPORT_SCHEMA: &str = "vc-lint-report/v1";

impl Report {
    /// Sorts findings deterministically — file path, then line, then
    /// rule code (column and message break remaining ties) — so rendered
    /// output and the JSON document are diffable and independent of
    /// filesystem iteration order and rule execution order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.code, a.col, &a.message)
                .cmp(&(&b.file, b.line, b.code, b.col, &b.message))
        });
    }

    /// Renders the `vc-lint-report/v1` JSON document (a single object,
    /// findings in sorted order, parseable by `xtask check-json`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * self.findings.len());
        out.push_str("{\n  \"schema\": \"");
        out.push_str(REPORT_SCHEMA);
        out.push_str("\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str(&format!("  \"total\": {},\n", self.findings.len()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"col\": {}, ", f.col));
            out.push_str(&format!("\"code\": {}, ", json_str(f.code)));
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
            out.push_str(&format!("\"message\": {}}}", json_str(&f.message)));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, col: u32, code: &'static str) -> Finding {
        Finding {
            file: file.into(),
            line,
            col,
            code,
            rule: "r",
            message: "m".into(),
        }
    }

    #[test]
    fn sort_is_file_then_line_then_code() {
        let mut r = Report {
            findings: vec![
                finding("b.rs", 1, 1, "VC002"),
                finding("a.rs", 9, 1, "VC001"),
                finding("a.rs", 2, 5, "VC009"),
                finding("a.rs", 2, 1, "VC001"),
            ],
            ..Report::default()
        };
        r.sort();
        let order: Vec<(String, u32, &str)> = r
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line, f.code))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".into(), 2, "VC001"),
                ("a.rs".into(), 2, "VC009"),
                ("a.rs".into(), 9, "VC001"),
                ("b.rs".into(), 1, "VC002"),
            ]
        );
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_report_renders_an_empty_findings_array() {
        let r = Report::default();
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"vc-lint-report/v1\""));
        assert!(j.contains("\"findings\": []"));
    }
}
