//! Inline suppression pragmas.
//!
//! A finding is suppressed by a plain `//` line comment of the form
//!
//! ```text
//! // vc-lint: allow(VC009, reason = "keyed scratch, iteration order never observed")
//! ```
//!
//! - The **reason is mandatory** and must be non-empty: a suppression is
//!   an argument, not a switch.
//! - Several codes may be listed: `allow(VC009, VC012, reason = "…")`.
//! - A pragma applies to findings on **its own line** (trailing-comment
//!   form) and on the **line directly below** (standalone form).
//! - Only `//` comments carry pragmas. Doc comments (`///`, `//!`) never
//!   do, so documentation can quote the syntax freely.
//! - A pragma that suppresses nothing is itself a finding
//!   ([`crate::rules::UNUSED_SUPPRESSION`], `VC013`), per listed code; a
//!   malformed pragma (missing reason, bad code, empty list) is a finding
//!   too ([`crate::rules::MALFORMED_SUPPRESSION`], `VC014`). Neither of
//!   those two codes can themselves be suppressed.

use crate::lexer::TokKind;
use crate::source::SourceFile;

/// One parsed suppression pragma.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// Relative path of the file containing the pragma.
    pub file: String,
    /// 1-indexed line of the pragma comment.
    pub line: u32,
    /// 1-indexed column of the pragma comment.
    pub col: u32,
    /// The rule codes this pragma suppresses (e.g. `["VC009"]`).
    pub codes: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
}

/// A pragma-shaped comment that does not parse.
#[derive(Clone, Debug)]
pub struct MalformedPragma {
    /// Relative path of the file containing the comment.
    pub file: String,
    /// 1-indexed line of the comment.
    pub line: u32,
    /// 1-indexed column of the comment.
    pub col: u32,
    /// What is wrong with it.
    pub error: String,
}

/// Scans a file's comment tokens for pragmas. Returns parsed pragmas and
/// malformed ones separately.
pub fn collect(file: &SourceFile) -> (Vec<Pragma>, Vec<MalformedPragma>) {
    let mut pragmas = Vec::new();
    let mut malformed = Vec::new();
    for (i, t) in file.toks.iter().enumerate() {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let text = file.tok_text(i);
        // Only plain `//` comments: `///` and `//!` are documentation.
        let Some(body) = text.strip_prefix("//") else {
            continue;
        };
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let Some(spec) = body.trim_start().strip_prefix("vc-lint:") else {
            continue;
        };
        match parse_spec(spec.trim()) {
            Ok((codes, reason)) => pragmas.push(Pragma {
                file: file.rel.clone(),
                line: t.line,
                col: t.col,
                codes,
                reason,
            }),
            Err(error) => malformed.push(MalformedPragma {
                file: file.rel.clone(),
                line: t.line,
                col: t.col,
                error,
            }),
        }
    }
    (pragmas, malformed)
}

/// Parses `allow(VC00x[, VC00y…], reason = "…")`.
fn parse_spec(spec: &str) -> Result<(Vec<String>, String), String> {
    let Some(rest) = spec.strip_prefix("allow") else {
        return Err(format!(
            "expected `allow(…)` after `vc-lint:`, found {spec:?}"
        ));
    };
    let rest = rest.trim_start();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.trim_end().strip_suffix(')'))
        .ok_or_else(|| "expected a parenthesized `allow(…)` argument list".to_string())?;

    // The reason clause is the last list entry: split it off first so the
    // quoted string may contain commas.
    let Some(reason_at) = inner.find("reason") else {
        return Err(
            "missing mandatory `reason = \"…\"` — a suppression is an argument, not a switch"
                .to_string(),
        );
    };
    let (codes_part, reason_part) = inner.split_at(reason_at);
    let reason_rhs = reason_part
        .strip_prefix("reason")
        .unwrap_or(reason_part)
        .trim_start();
    let reason_rhs = reason_rhs
        .strip_prefix('=')
        .ok_or_else(|| "expected `=` after `reason`".to_string())?
        .trim();
    let reason = reason_rhs
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "the reason must be a double-quoted string".to_string())?
        .trim()
        .to_string();
    if reason.is_empty() {
        return Err("the reason must not be empty".to_string());
    }

    let mut codes = Vec::new();
    for entry in codes_part.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        if !is_code(entry) {
            return Err(format!(
                "{entry:?} is not a rule code (expected `VC` plus three digits, e.g. VC009)"
            ));
        }
        codes.push(entry.to_string());
    }
    if codes.is_empty() {
        return Err("the allow list names no rule codes".to_string());
    }
    Ok((codes, reason))
}

/// True for `VC` followed by exactly three ASCII digits.
fn is_code(s: &str) -> bool {
    s.len() == 5 && s.starts_with("VC") && s[2..].bytes().all(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("x.rs".into(), src.into())
    }

    #[test]
    fn well_formed_pragmas_parse() {
        let src = "let a = 1; // vc-lint: allow(VC009, reason = \"keyed, order unobserved\")\n";
        let (pragmas, malformed) = collect(&file(src));
        assert!(malformed.is_empty());
        assert_eq!(pragmas.len(), 1);
        assert_eq!(pragmas[0].codes, vec!["VC009"]);
        assert_eq!(pragmas[0].reason, "keyed, order unobserved");
        assert_eq!(pragmas[0].line, 1);
    }

    #[test]
    fn multiple_codes_and_commas_in_reasons() {
        let src = "// vc-lint: allow(VC009, VC012, reason = \"a, b, and c\")\n";
        let (pragmas, malformed) = collect(&file(src));
        assert!(malformed.is_empty());
        assert_eq!(pragmas[0].codes, vec!["VC009", "VC012"]);
        assert_eq!(pragmas[0].reason, "a, b, and c");
    }

    #[test]
    fn missing_reason_is_malformed() {
        let (pragmas, malformed) = collect(&file("// vc-lint: allow(VC001)\n"));
        assert!(pragmas.is_empty());
        assert_eq!(malformed.len(), 1);
        assert!(malformed[0].error.contains("reason"));
    }

    #[test]
    fn empty_reason_bad_code_and_bad_verb_are_malformed() {
        for src in [
            "// vc-lint: allow(VC001, reason = \"\")\n",
            "// vc-lint: allow(VC1, reason = \"x\")\n",
            "// vc-lint: allow(reason = \"x\")\n",
            "// vc-lint: deny(VC001, reason = \"x\")\n",
            "// vc-lint: allow VC001\n",
        ] {
            let (pragmas, malformed) = collect(&file(src));
            assert!(pragmas.is_empty(), "should not parse: {src}");
            assert_eq!(malformed.len(), 1, "should be malformed: {src}");
        }
    }

    #[test]
    fn doc_comments_and_unrelated_comments_are_ignored() {
        let src = "\
/// vc-lint: allow(VC001, reason = \"docs quoting the syntax\")
//! vc-lint: allow(VC002, reason = \"inner docs too\")
// an ordinary comment
fn f() {}
";
        let (pragmas, malformed) = collect(&file(src));
        assert!(pragmas.is_empty());
        assert!(malformed.is_empty());
    }
}
