//! Workspace loading: file discovery, lexing, and `#[cfg(test)]` masking.
//!
//! Every `.rs` file under the scanned roots is read and lexed **once**;
//! rules then iterate the shared token streams. Paths are stored relative
//! to the workspace root with `/` separators so findings (and their JSON
//! form) are stable across machines.

use std::path::{Path, PathBuf};

use crate::lexer::{self, Tok, TokKind};

/// Directory names the walker never descends into, wherever it is rooted:
/// build artifacts (`target`), vendored third-party crates (`vendor`),
/// lint test fixtures (`fixtures` — deliberately violating files), and
/// hidden directories. A stray build artifact or vendored crate can never
/// produce findings.
const SKIPPED_DIRS: &[&str] = &["target", "vendor", "fixtures"];

/// Recursively collects `.rs` files under `dir`, sorted by path for
/// stable output, skipping [`SKIPPED_DIRS`] subtrees.
pub fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return files;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let skip = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_none_or(|n| SKIPPED_DIRS.contains(&n) || n.starts_with('.'));
            if !skip {
                files.extend(rs_files(&path));
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    files
}

/// One loaded, lexed source file.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// The raw source text.
    pub text: String,
    /// The token stream (see [`lexer::lex`]).
    pub toks: Vec<Tok>,
    /// `in_test[i]` is true when token `i` belongs to an item guarded by
    /// `#[cfg(test)]` (the attribute itself included).
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Lexes `text` into a [`SourceFile`].
    pub fn new(rel: String, text: String) -> Self {
        let toks = lexer::lex(&text);
        let in_test = test_mask(&text, &toks);
        Self {
            rel,
            text,
            toks,
            in_test,
        }
    }

    /// The source text of token `i`.
    pub fn tok_text(&self, i: usize) -> &str {
        let t = &self.toks[i];
        &self.text[t.start..t.end]
    }

    /// True when token `i` is an identifier spelling `name`.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && self.tok_text(i) == name)
    }

    /// True when token `i` is the punctuation byte `p`.
    pub fn is_punct(&self, i: usize, p: u8) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && self.text.as_bytes()[t.start] == p)
    }

    /// Indices of non-comment tokens, optionally excluding
    /// `#[cfg(test)]` regions.
    pub fn code_indices(&self, include_tests: bool) -> Vec<usize> {
        (0..self.toks.len())
            .filter(|&i| !self.toks[i].kind.is_comment())
            .filter(|&i| include_tests || !self.in_test[i])
            .collect()
    }
}

/// Computes the `#[cfg(test)]` mask: for every `#[cfg(test)]` attribute,
/// the attribute tokens and the item that follows (to its matching
/// closing brace, or to the first `;` for braceless items) are marked.
/// Comments and literals are tokens, so brace counting is exact.
fn test_mask(text: &str, toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let at = |i: usize, p: u8| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && text.as_bytes()[t.start] == p)
    };
    let ident = |i: usize, name: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && &text[t.start..t.end] == name)
    };
    let mut i = 0;
    while i < toks.len() {
        let is_attr = at(i, b'#')
            && at(i + 1, b'[')
            && ident(i + 2, "cfg")
            && at(i + 3, b'(')
            && ident(i + 4, "test")
            && at(i + 5, b')')
            && at(i + 6, b']');
        if !is_attr {
            i += 1;
            continue;
        }
        // Walk to the end of the guarded item: first `;` before any brace,
        // or the brace matching the first `{`.
        let mut j = i + 7;
        let mut depth = 0usize;
        let mut opened = false;
        while j < toks.len() {
            if at(j, b'{') {
                depth += 1;
                opened = true;
            } else if at(j, b'}') {
                depth = depth.saturating_sub(1);
                if opened && depth == 0 {
                    break;
                }
            } else if at(j, b';') && !opened {
                break;
            }
            j += 1;
        }
        let end = (j + 1).min(toks.len());
        for m in &mut mask[i..end] {
            *m = true;
        }
        i = end;
    }
    mask
}

/// A loaded workspace: the root plus every lexed source file under the
/// scanned subtrees (`crates/`, `examples/`, `tests/`).
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Loaded files, sorted by relative path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// The subtrees scanned relative to the root.
    pub const SCAN_ROOTS: &'static [&'static str] = &["crates", "examples", "tests"];

    /// Loads and lexes every `.rs` file under the scan roots. Unreadable
    /// files are skipped (the build would fail on them long before lint).
    pub fn load(root: &Path) -> Self {
        let mut files = Vec::new();
        for sub in Self::SCAN_ROOTS {
            for path in rs_files(&root.join(sub)) {
                let Ok(text) = std::fs::read_to_string(&path) else {
                    continue;
                };
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                files.push(SourceFile::new(rel, text));
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Self {
            root: root.to_path_buf(),
            files,
        }
    }

    /// The loaded file with exactly this relative path, if any.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = "
fn good() -> Option<u32> { Some(1) }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = good().unwrap();
        assert_eq!(v, 1);
    }
}
";
        let f = SourceFile::new("x.rs".into(), src.into());
        let nontest: Vec<&str> = f
            .code_indices(false)
            .into_iter()
            .map(|i| f.tok_text(i))
            .collect();
        assert!(nontest.contains(&"good"));
        assert!(!nontest.contains(&"unwrap"));
        let all: Vec<&str> = f
            .code_indices(true)
            .into_iter()
            .map(|i| f.tok_text(i))
            .collect();
        assert!(all.contains(&"unwrap"));
    }

    #[test]
    fn cfg_test_on_braceless_items_stops_at_the_semicolon() {
        let src =
            "#[cfg(test)] use std::collections::HashMap;\nfn after() { let _ = q.unwrap(); }\n";
        let f = SourceFile::new("x.rs".into(), src.into());
        let nontest: Vec<&str> = f
            .code_indices(false)
            .into_iter()
            .map(|i| f.tok_text(i))
            .collect();
        assert!(!nontest.contains(&"HashMap"));
        assert!(nontest.contains(&"unwrap"));
    }

    #[test]
    fn walker_skips_target_vendor_and_fixtures() {
        let dir = std::env::temp_dir().join(format!("vc-lint-walk-{}", std::process::id()));
        for sub in ["src", "target/debug", "vendor/dep/src", "tests/fixtures/f"] {
            std::fs::create_dir_all(dir.join(sub)).unwrap();
        }
        std::fs::write(dir.join("src/lib.rs"), "pub fn a() {}").unwrap();
        std::fs::write(dir.join("target/debug/gen.rs"), "fn b() {}").unwrap();
        std::fs::write(dir.join("vendor/dep/src/lib.rs"), "fn c() {}").unwrap();
        std::fs::write(dir.join("tests/fixtures/f/bad.rs"), "fn d() {}").unwrap();
        let files = rs_files(&dir);
        assert_eq!(files.len(), 1);
        assert!(files[0].ends_with("src/lib.rs"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
