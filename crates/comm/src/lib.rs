//! # vc-comm
//!
//! The communication-complexity substrate of paper §2.5: two-party
//! protocols, the disjointness function (Theorem 2.10), embeddings of
//! Boolean functions into labeled graphs (Definition 2.7), and the
//! query-to-communication simulation with per-query cost accounting
//! (Definitions 2.8–2.9, Theorem 2.9) used by the `Ω(n)` volume lower
//! bound for BalancedTree (Proposition 4.9).

pub mod disjointness;
pub mod embedding;

pub use disjointness::{disj, promise_pair};
pub use embedding::{simulate_charged, ChargedRun, ChargingOracle};
