//! The set-disjointness function and its promise version (Theorem 2.10).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// `disj(x, y) = 1` iff `Σ x_i · y_i = 0` — the inputs are disjoint as
/// subsets of `[N]`.
pub fn disj(x: &[bool], y: &[bool]) -> bool {
    assert_eq!(x.len(), y.len(), "inputs must have equal length");
    !x.iter().zip(y).any(|(&a, &b)| a && b)
}

/// Draws a promise pair `(x, y)` with `Σ x_i y_i ∈ {0, 1}` — the hard
/// distribution of Theorem 2.10 (Kalyanasundaram–Schnitger / Razborov):
/// each coordinate is put in `x` or `y` (but not both) uniformly, and with
/// `intersecting` a single shared coordinate is planted.
pub fn promise_pair(n: usize, intersecting: bool, seed: u64) -> (Vec<bool>, Vec<bool>) {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = vec![false; n];
    let mut y = vec![false; n];
    for i in 0..n {
        match rng.random_range(0..3u8) {
            0 => x[i] = true,
            1 => y[i] = true,
            _ => {}
        }
    }
    if intersecting {
        let i = rng.random_range(0..n);
        x[i] = true;
        y[i] = true;
    } else {
        // Clear any accidental intersection (none is created above, but be
        // defensive about future edits).
        for i in 0..n {
            if x[i] && y[i] {
                y[i] = false;
            }
        }
    }
    (x, y)
}

/// A trivial one-way protocol: Alice sends her whole input (`N` bits), Bob
/// answers. Certifies `R(disj) ≤ N + 1` and exercises the transcript
/// accounting used in tests.
pub fn trivial_protocol_bits(x: &[bool], y: &[bool]) -> (bool, u64) {
    let answer = disj(x, y);
    (answer, x.len() as u64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disj_basic() {
        assert!(disj(&[true, false], &[false, true]));
        assert!(!disj(&[true, false], &[true, false]));
        assert!(disj(&[], &[]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn disj_length_checked() {
        let _ = disj(&[true], &[true, false]);
    }

    #[test]
    fn promise_pairs_satisfy_promise() {
        for seed in 0..50 {
            let (x, y) = promise_pair(32, false, seed);
            assert!(disj(&x, &y), "seed {seed}");
            let (x, y) = promise_pair(32, true, seed);
            let inter: usize = x.iter().zip(&y).filter(|(&a, &b)| a && b).count();
            assert_eq!(inter, 1, "seed {seed}");
        }
    }

    #[test]
    fn trivial_protocol_is_correct_and_linear() {
        let (x, y) = promise_pair(64, true, 3);
        let (ans, bits) = trivial_protocol_bits(&x, &y);
        assert!(!ans);
        assert_eq!(bits, 65);
    }
}
