//! The embedding machinery of Definitions 2.7–2.9 and Theorem 2.9,
//! instantiated for the BalancedTree lower bound (Proposition 4.9).
//!
//! The embedding `E(x, y)` is [`vc_graph::gen::disjointness_embedding`]: a
//! depth-`k` balanced-tree instance whose `i`-th leaf pair carries labels
//! depending jointly on `(x_i, y_i)`. The decision function `g` asks
//! whether the root's output is `(B, ⊥)`; by Lemma 4.7,
//! `g(E(x, y)) = disj(x, y)`, so `(E, g)` is an embedding of disjointness.
//!
//! In the two-party simulation, Alice (holding `x`) and Bob (holding `y`)
//! jointly simulate a query algorithm on `E(x, y)`. Every query has
//! communication cost 0 except the queries revealing a leaf from its parent
//! `v_i` — those cost 2 bits (exchange `x_i` and `y_i`); [`ChargingOracle`]
//! meters exactly that. Theorem 2.9 + Theorem 2.10 then give
//! `queries ≥ R(disj)/2 = Ω(N)`; empirically, any algorithm that decides
//! `g` is observed to pay `Ω(N)` chargeable bits.

use std::collections::HashSet;
use vc_graph::gen::BalancedTreeMeta;
use vc_graph::{Instance, Port};
use vc_model::oracle::{NodeView, Oracle, OracleStats, QueryError};
use vc_model::run::QueryAlgorithm;
use vc_model::{Budget, Execution};

/// An oracle wrapper that meters the two-party communication cost of each
/// query per Definition 2.8: queries in a designated *chargeable* set cost
/// `bits_per_charged_query` bits; all others are free.
pub struct ChargingOracle<'o, O: Oracle> {
    inner: &'o mut O,
    chargeable: HashSet<(usize, Port)>,
    bits_per_charged_query: u64,
    bits: u64,
    charged_queries: u64,
}

impl<'o, O: Oracle> ChargingOracle<'o, O> {
    /// Wraps `inner`, charging `bits_per_charged_query` bits for each query
    /// in `chargeable`.
    pub fn new(
        inner: &'o mut O,
        chargeable: HashSet<(usize, Port)>,
        bits_per_charged_query: u64,
    ) -> Self {
        Self {
            inner,
            chargeable,
            bits_per_charged_query,
            bits: 0,
            charged_queries: 0,
        }
    }

    /// Total bits Alice and Bob exchanged.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Number of chargeable queries issued.
    pub fn charged_queries(&self) -> u64 {
        self.charged_queries
    }
}

impl<O: Oracle> Oracle for ChargingOracle<'_, O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn root(&self) -> NodeView {
        self.inner.root()
    }

    fn query(&mut self, from: usize, port: Port) -> Result<NodeView, QueryError> {
        let out = self.inner.query(from, port)?;
        if self.chargeable.contains(&(from, port)) {
            self.bits += self.bits_per_charged_query;
            self.charged_queries += 1;
        }
        Ok(out)
    }

    fn rand_bit(&mut self, node: usize) -> Result<bool, QueryError> {
        self.inner.rand_bit(node)
    }

    fn stats(&self) -> OracleStats {
        self.inner.stats()
    }
}

/// The chargeable query set of Proposition 4.9: the child queries
/// `query(v_i, LC(v_i))` and `query(v_i, RC(v_i))` of the depth-`(k−1)`
/// nodes — the only labels that depend on `(x, y)`.
pub fn chargeable_queries(inst: &Instance, meta: &BalancedTreeMeta) -> HashSet<(usize, Port)> {
    let mut set = HashSet::new();
    for &vi in &meta.penultimate {
        for p in [inst.labels[vi].left_child, inst.labels[vi].right_child]
            .into_iter()
            .flatten()
        {
            set.insert((vi, p));
        }
    }
    set
}

/// Result of a charged simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct ChargedRun<O> {
    /// The algorithm's output at the root.
    pub output: O,
    /// Bits Alice and Bob exchanged (2 per leaf-revealing query).
    pub bits: u64,
    /// Chargeable queries issued.
    pub charged_queries: u64,
    /// Total queries issued.
    pub queries: u64,
    /// Volume used.
    pub volume: usize,
}

/// Simulates `algo` from the root of the embedded instance under two-party
/// cost accounting.
///
/// # Errors
///
/// Propagates the algorithm's oracle errors.
pub fn simulate_charged<A: QueryAlgorithm>(
    algo: &A,
    inst: &Instance,
    meta: &BalancedTreeMeta,
) -> Result<ChargedRun<A::Output>, QueryError> {
    let mut exec = Execution::new(inst, meta.root, None, Budget::unlimited());
    let mut charged = ChargingOracle::new(&mut exec, chargeable_queries(inst, meta), 2);
    let output = algo.run(&mut charged)?;
    let bits = charged.bits();
    let charged_queries = charged.charged_queries();
    let stats = exec.stats();
    Ok(ChargedRun {
        output,
        bits,
        charged_queries,
        queries: stats.queries,
        volume: stats.volume,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjointness::{disj, promise_pair};
    use vc_core::output::{BtFlag, BtOutput};
    use vc_core::problems::balanced_tree::DistanceSolver;
    use vc_graph::gen;

    /// `g(E(x, y))`: does the BalancedTree solver declare the root balanced?
    fn g_of_embedding(x: &[bool], y: &[bool]) -> (bool, ChargedRun<BtOutput>) {
        let (inst, meta) = gen::disjointness_embedding(x, y);
        let run = simulate_charged(&DistanceSolver, &inst, &meta).expect("no budget");
        (run.output.flag == BtFlag::Balanced, run)
    }

    #[test]
    fn embedding_is_sound() {
        // Definition 2.7: g(E(x, y)) = disj(x, y) on promise inputs.
        for seed in 0..20 {
            for intersecting in [false, true] {
                let (x, y) = promise_pair(16, intersecting, seed);
                let (g, _) = g_of_embedding(&x, &y);
                assert_eq!(g, disj(&x, &y), "seed {seed} intersecting {intersecting}");
            }
        }
    }

    #[test]
    fn embedding_sound_on_arbitrary_inputs() {
        // Beyond the promise: exhaustive check for N = 4.
        for xa in 0..16u32 {
            for yb in 0..16u32 {
                let x: Vec<bool> = (0..4).map(|i| xa >> i & 1 == 1).collect();
                let y: Vec<bool> = (0..4).map(|i| yb >> i & 1 == 1).collect();
                let (g, _) = g_of_embedding(&x, &y);
                assert_eq!(g, disj(&x, &y), "x={x:?} y={y:?}");
            }
        }
    }

    #[test]
    fn deciding_disjointness_costs_linear_bits() {
        // The solver must examine every leaf pair on disjoint inputs: the
        // charged bits grow linearly in N (Theorem 2.9's premise).
        let mut previous = 0;
        for exp in 2..=6u32 {
            let n = 1usize << exp;
            let (x, y) = promise_pair(n, false, 7);
            let (g, run) = g_of_embedding(&x, &y);
            assert!(g);
            assert!(
                run.bits >= 2 * n as u64,
                "N={n}: bits {} below 2N",
                run.bits
            );
            assert!(run.bits > previous);
            previous = run.bits;
        }
    }

    #[test]
    fn charged_queries_are_the_leaf_queries() {
        let (x, y) = promise_pair(8, false, 1);
        let (_, run) = g_of_embedding(&x, &y);
        // Each v_i has two chargeable ports; re-queries may repeat them.
        assert!(run.charged_queries >= 16);
        assert_eq!(run.bits, 2 * run.charged_queries);
        assert!(run.queries >= run.charged_queries);
    }

    #[test]
    fn free_queries_cost_nothing() {
        let (inst, meta) = gen::balanced_tree_compatible(3);
        let mut exec = Execution::new(&inst, meta.root, None, Budget::unlimited());
        let mut charged = ChargingOracle::new(&mut exec, HashSet::new(), 2);
        // Query around: nothing is chargeable.
        let root = charged.root();
        let _ = charged.query(root.node, Port::new(1)).unwrap();
        assert_eq!(charged.bits(), 0);
        assert_eq!(charged.charged_queries(), 0);
    }
}
